"""Pipelined RDMA-Write rendezvous (Open MPI 1.0 default long-message path).

"Initially, a combined send request plus first fragment descriptor is sent
which has to be acknowledged by the receiver.  Once the acknowledgment has
arrived, the sender pipelines the remaining fragments using a scheduling
algorithm." (paper Sec. 3.5.)  Fragments may stripe across multiple rails.

Stamping is per data-transfer operation (per fragment):

* fragment 0 rides with the RTS through the send channel -- the sender
  stamps its ``XFER_BEGIN`` at post (inside ``Isend``) and its
  ``XFER_END`` when the local send completion is drained; the receiver
  sees only an END-only event (case 3);
* the remaining fragments are RDMA Writes typically both begun and
  completed inside ``MPI_Wait`` (case 1 -- zero overlap), which is why
  "the pipelined RDMA scheme is only able to overlap the initial
  fragment" (Fig. 4);
* the receiver approximates the bulk transfer with ``XFER_BEGIN`` at its
  ACK and ``XFER_END`` at the sender's FIN.
"""

from __future__ import annotations

import typing

from repro.mpisim.packets import CtsPacket, FinPacket, RtsPacket
from repro.mpisim.protocols.base import RendezvousProtocol
from repro.mpisim.status import Status

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint, RecvState, SendState


class PipelinedRdmaProtocol(RendezvousProtocol):
    mode = "pipelined"

    # -- sender -------------------------------------------------------------
    def start_send(self, ep: "Endpoint", st: "SendState") -> typing.Generator:
        frag0 = min(float(ep.config.frag_size), st.nbytes)
        # Fragment 0 goes through the send channel: bounce-buffer copy + post.
        yield ep.busy(ep.params.copy_time(frag0))
        yield ep.busy(ep.params.post_cost)
        xid0 = ep.monitor.xfer_begin(frag0)

        def on_frag0_sent() -> None:
            ep.monitor.xfer_end(xid0, frag0)

        ep.post_send_channel(
            st.dest,
            frag0 + ep.control_size,
            RtsPacket(st.seq, ep.rank, st.tag, st.nbytes, frag0, st.data,
                      st.req.context),
            context=ep.track_local(on_frag0_sent),
        )

    def on_cts(self, ep: "Endpoint", st: "SendState") -> typing.Generator:
        """The receiver acknowledged: schedule the remaining fragments.

        Typically drained inside ``MPI_Wait`` -- "It then schedules
        additional fragments which do not get overlapped."
        """
        remaining = st.nbytes - min(float(ep.config.frag_size), st.nbytes)
        if remaining <= 0:
            # Single-fragment message: nothing left to write.
            st.req.complete()
            ep.sends.pop(st.seq, None)
            return
        frag_size = float(ep.config.frag_size)
        offsets = _fragments(remaining, frag_size)
        st.frags_pending = len(offsets)
        for frag_bytes in offsets:
            # Pipelined on-the-fly registration of each fragment (this is
            # the setup cost the pipeline exists to hide); never cached.
            yield ep.busy(ep.params.pin_time(frag_bytes))
            yield ep.busy(ep.params.post_cost)
            xid = ep.monitor.xfer_begin(frag_bytes)

            def on_written(
                xid: int = xid, frag_bytes: float = frag_bytes
            ) -> typing.Generator:
                ep.monitor.xfer_end(xid, frag_bytes)
                st.frags_pending -= 1
                if st.frags_pending == 0:
                    # All fragments placed: tell the receiver, finish the send.
                    yield from ep.send_control(
                        st.dest,
                        FinPacket(st.seq, ep.rank, to_sender=False, data=st.data),
                    )
                    ep.sends.pop(st.seq, None)
                    st.req.complete()

            rail = ep.next_rail()
            rail.post_rdma_write(
                ep.nic_for(st.dest, rail.port),
                frag_bytes,
                context=on_written,
            )

    def on_fin_to_sender(self, ep: "Endpoint", st: "SendState") -> typing.Generator:
        raise AssertionError("pipelined rendezvous sends no FIN to the sender")
        yield  # pragma: no cover

    # -- receiver -------------------------------------------------------------
    def start_recv(
        self,
        ep: "Endpoint",
        rst: "RecvState",
        frag_nbytes: float,
        frag_data: object,
    ) -> typing.Generator:
        # Copy fragment 0 out of the pre-registered buffers; END-only event.
        if frag_nbytes > 0:
            yield ep.busy(ep.params.copy_time(frag_nbytes))
            ep.monitor.xfer_end_only(frag_nbytes)
        rst.remaining = rst.nbytes - frag_nbytes
        if rst.remaining <= 0:
            # Whole message came with the RTS; still acknowledge so the
            # sender's request can finish.
            yield from ep.send_control(rst.src, CtsPacket(rst.seq, ep.rank))
            ep.recvs.pop((rst.src, rst.seq), None)
            rst.req.complete(Status(rst.src, rst.tag, rst.nbytes), frag_data)
            return
        # Pin the receive buffer and acknowledge; the ACK is the receiver's
        # best approximation of when the bulk transfer starts.
        pin_cost = ep.regcache.register(
            ("recv", rst.src, rst.tag, rst.nbytes), rst.remaining
        )
        if pin_cost > 0:
            yield ep.busy(pin_cost)
        yield from ep.send_control(rst.src, CtsPacket(rst.seq, ep.rank))
        rst.xfer_id = ep.monitor.xfer_begin(rst.remaining)

    def on_fin_to_receiver(
        self, ep: "Endpoint", rst: "RecvState", data: object
    ) -> typing.Generator:
        ep.monitor.xfer_end(rst.xfer_id, rst.remaining)
        rst.req.complete(Status(rst.src, rst.tag, rst.nbytes), data)
        return
        yield  # pragma: no cover - generator shape


def _fragments(total: float, frag_size: float) -> list[float]:
    """Split ``total`` bytes into pipeline fragments of ``frag_size``."""
    out: list[float] = []
    left = total
    while left > 0:
        take = min(frag_size, left)
        out.append(take)
        left -= take
    return out
