"""Tag/source matching: posted-receive and unexpected-message queues.

MPI matching semantics: a receive matches the oldest arrival whose
``(source, tag)`` satisfies its (possibly wildcard) signature, and an
arrival matches the oldest posted receive it satisfies.  Per-pair FIFO
order is guaranteed by the NIC model, so scanning in list order implements
the non-overtaking rule.
"""

from __future__ import annotations

import typing

from repro.mpisim.request import Request
from repro.mpisim.status import ANY_SOURCE, ANY_TAG


class UnexpectedMsg(typing.NamedTuple):
    """An arrival for which no receive was posted yet.

    ``kind`` is ``"eager"`` (data already here, in a library buffer) or
    ``"rts"`` (a rendezvous announcement; data still on the sender).
    """

    kind: str
    seq: int
    src: int
    tag: int
    nbytes: float
    data: object
    frag_nbytes: float
    #: Communicator context id.
    ctx: int = 0


def _matches(
    want_src: int, want_tag: int, want_ctx: int, src: int, tag: int, ctx: int
) -> bool:
    # The context id is never wildcarded: sub-communicators are isolated.
    return (
        want_ctx == ctx
        and (want_src == ANY_SOURCE or want_src == src)
        and (want_tag == ANY_TAG or want_tag == tag)
    )


class MatchingEngine:
    """One rank's posted and unexpected queues."""

    def __init__(self) -> None:
        self._posted: list[Request] = []
        self._unexpected: list[UnexpectedMsg] = []
        #: Diagnostics: how many arrivals landed unexpected.
        self.unexpected_count = 0

    # -- receive side ------------------------------------------------------
    def post_recv(self, req: Request) -> UnexpectedMsg | None:
        """Register a receive; returns a matching unexpected arrival if one
        is already queued (the receive is then *not* added to the posted
        queue -- the caller consumes the arrival immediately)."""
        for i, msg in enumerate(self._unexpected):
            if _matches(req.source, req.tag, req.context, msg.src, msg.tag, msg.ctx):
                del self._unexpected[i]
                return msg
        self._posted.append(req)
        return None

    def cancel_recv(self, req: Request) -> bool:
        """Remove a posted receive (returns False if already matched)."""
        try:
            self._posted.remove(req)
        except ValueError:
            return False
        return True

    # -- arrival side --------------------------------------------------------
    def match_arrival(self, src: int, tag: int, ctx: int = 0) -> Request | None:
        """Find the oldest posted receive matching an arrival, removing it."""
        for i, req in enumerate(self._posted):
            if _matches(req.source, req.tag, req.context, src, tag, ctx):
                del self._posted[i]
                return req
        return None

    def add_unexpected(self, msg: UnexpectedMsg) -> None:
        """Queue an arrival that matched no posted receive."""
        self._unexpected.append(msg)
        self.unexpected_count += 1

    # -- probe ---------------------------------------------------------------
    def peek(self, source: int, tag: int, ctx: int = 0) -> UnexpectedMsg | None:
        """Oldest unexpected arrival matching ``(source, tag)``, not removed."""
        for msg in self._unexpected:
            if _matches(source, tag, ctx, msg.src, msg.tag, msg.ctx):
                return msg
        return None

    @property
    def posted_count(self) -> int:
        return len(self._posted)

    @property
    def unexpected_pending(self) -> int:
        return len(self._unexpected)
