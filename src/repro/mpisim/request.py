"""Request objects returned by non-blocking operations."""

from __future__ import annotations

import typing

from repro.mpisim.status import Status


class Request:
    """Handle for an in-flight non-blocking send or receive.

    Completion is driven by the polling progress engine; a request never
    completes "in the background" from the host's perspective -- some
    library call must poll it to completion, which is exactly the
    synchronous-completion behaviour the paper studies.
    """

    __slots__ = (
        "kind",
        "done",
        "status",
        "data",
        "source",
        "dest",
        "tag",
        "nbytes",
        "cancelled",
        "context",
    )

    def __init__(
        self,
        kind: str,
        source: int,
        dest: int,
        tag: int,
        nbytes: float,
        context: int = 0,
    ) -> None:
        if kind not in ("send", "recv"):
            raise ValueError(f"bad request kind {kind!r}")
        self.kind = kind
        self.done = False
        self.cancelled = False
        self.status: Status | None = None
        #: Received payload (receives only; None for size-only messages).
        self.data: object = None
        self.source = source
        self.dest = dest
        self.tag = tag
        self.nbytes = nbytes
        #: Communicator context id (sub-communicators never cross-match).
        self.context = context

    def complete(self, status: Status | None = None, data: object = None) -> None:
        """Mark the request finished (called by the progress engine)."""
        if self.done:
            raise RuntimeError(f"{self!r} completed twice")
        self.done = True
        self.status = status
        self.data = data

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return (
            f"<Request {self.kind} {state} src={self.source} dst={self.dest} "
            f"tag={self.tag} n={self.nbytes}>"
        )


class PersistentRequest:
    """A reusable communication recipe (``MPI_Send_init``/``MPI_Recv_init``).

    Persistent requests amortize argument setup for fixed communication
    patterns: the paper-era NPB codes use them in inner loops.  ``start``
    posts a fresh underlying operation; the handle is *inactive* between a
    completed wait and the next start.
    """

    __slots__ = ("kind", "peer", "tag", "nbytes", "data", "bufkey", "active")

    def __init__(
        self,
        kind: str,
        peer: int,
        tag: int,
        nbytes: float,
        data: object = None,
        bufkey: object = None,
    ) -> None:
        if kind not in ("send", "recv"):
            raise ValueError(f"bad persistent request kind {kind!r}")
        self.kind = kind
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.data = data
        self.bufkey = bufkey
        #: The in-flight Request while started, else None.
        self.active: Request | None = None

    @property
    def is_active(self) -> bool:
        return self.active is not None and not self.active.done

    def __repr__(self) -> str:
        state = "active" if self.is_active else "inactive"
        return (
            f"<PersistentRequest {self.kind} {state} peer={self.peer} "
            f"tag={self.tag} n={self.nbytes}>"
        )
