"""Binomial-tree broadcast."""

from __future__ import annotations

import typing

from repro.mpisim.collectives.util import begin_collective, coll_tag

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint


def bcast(
    ep: "Endpoint", root: int, nbytes: float, data: object = None
) -> typing.Generator:
    """Broadcast ``nbytes`` (and optionally ``data``) from ``root``.

    Returns the broadcast value on every rank.
    """
    begin_collective(ep)
    size, rank = ep.size, ep.rank
    if size == 1:
        return data
    tag = coll_tag(ep)
    vrank = (rank - root) % size

    # Receive from the parent (if not the root).
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            req = yield from ep.irecv(parent, tag)
            yield from ep.wait(req)
            data = req.data
            break
        mask <<= 1
    else:
        mask = 1
        while mask < size:
            mask <<= 1

    # Forward to children.
    mask >>= 1
    reqs = []
    while mask > 0:
        if vrank & mask == 0 and vrank + mask < size:
            child = (vrank + mask + root) % size
            reqs.append((yield from ep.isend(child, tag, nbytes, data)))
        mask >>= 1
    if reqs:
        yield from ep.wait_all(reqs)
    return data
