"""Collective operations built on the point-to-point internals.

Each algorithm is a generator function taking the endpoint; the
:class:`~repro.mpisim.communicator.Comm` methods wrap them in a single
instrumented library call.  All internal message transfers still stamp
XFER events, so a collective's data movement is counted -- and, since it
begins and ends inside one call, it resolves to bounding case 1 (zero
overlap), exactly the behaviour behind the paper's FT analysis ("Most of
the communication in FT is done by the Alltoall collective ...  These
transfers do not get overlapped with computation").
"""

from repro.mpisim.collectives.allgather import allgather
from repro.mpisim.collectives.allreduce import allreduce
from repro.mpisim.collectives.alltoall import alltoall, alltoallv
from repro.mpisim.collectives.barrier import barrier
from repro.mpisim.collectives.bcast import bcast
from repro.mpisim.collectives.gather import gather, gatherv
from repro.mpisim.collectives.reduce import reduce
from repro.mpisim.collectives.reduce_scatter import reduce_scatter
from repro.mpisim.collectives.scan import scan
from repro.mpisim.collectives.scatter import scatter, scatterv

#: Tag space reserved for collectives (application tags must stay below).
COLL_TAG_BASE = 1 << 20

__all__ = [
    "COLL_TAG_BASE",
    "allgather",
    "allreduce",
    "alltoall",
    "alltoallv",
    "barrier",
    "bcast",
    "gather",
    "gatherv",
    "reduce",
    "reduce_scatter",
    "scan",
    "scatter",
    "scatterv",
]
