"""All-to-all personalized exchange (pairwise and Bruck schedules).

Pairwise is the large-message workhorse: ``P - 1`` steps, each moving one
block directly to its owner.  Bruck trades bandwidth for latency: only
``ceil(log2 P)`` rounds, but every block travels ~``log2(P)/2`` hops --
the small-message algorithm real MPIs select below a threshold.
"""

from __future__ import annotations

import math
import typing

from repro.mpisim.collectives.util import begin_collective, coll_tag

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint


def alltoall(
    ep: "Endpoint",
    nbytes_each: float,
    data: typing.Sequence[object] | None = None,
    algorithm: str = "pairwise",
) -> typing.Generator:
    """Exchange one ``nbytes_each`` block with every rank.

    ``data[i]`` (if given) is the block destined for rank ``i``; returns a
    list of the blocks received from each rank (own block passes through a
    local copy).  ``algorithm`` is ``"pairwise"`` or ``"bruck"``.
    """
    if algorithm == "bruck":
        result = yield from _alltoall_bruck(ep, nbytes_each, data)
        return result
    if algorithm != "pairwise":
        raise ValueError(
            f"alltoall algorithm must be pairwise or bruck, got {algorithm!r}"
        )
    sizes = [nbytes_each] * ep.size
    result = yield from alltoallv(ep, sizes, data)
    return result


def _alltoall_bruck(
    ep: "Endpoint",
    nbytes_each: float,
    data: typing.Sequence[object] | None,
) -> typing.Generator:
    """Bruck's algorithm: log-round store-and-forward exchange."""
    begin_collective(ep)
    size, rank = ep.size, ep.rank
    if data is not None and len(data) != size:
        raise ValueError(f"need {size} data blocks, got {len(data)}")
    if size == 1:
        return [data[0] if data is not None else None]

    # Phase 1: local rotation -- slot i holds the block destined for
    # rank (rank + i) mod P.
    blocks: list[object] = [
        data[(rank + i) % size] if data is not None else None
        for i in range(size)
    ]
    # Phase 2: log rounds; round k forwards every slot whose index has
    # bit k set, to rank + 2^k (accumulating hops).
    pof2 = 1
    round_no = 0
    while pof2 < size:
        send_idx = [i for i in range(size) if i & pof2]
        tag = coll_tag(ep, round_no)
        nbytes = nbytes_each * len(send_idx)
        dst = (rank + pof2) % size
        src = (rank - pof2) % size
        payload = [blocks[i] for i in send_idx] if data is not None else None
        rreq = yield from ep.irecv(src, tag)
        sreq = yield from ep.isend(dst, tag, nbytes, payload)
        yield from ep.wait_all([sreq, rreq])
        if data is not None:
            for slot, value in zip(send_idx, typing.cast(list, rreq.data)):
                blocks[slot] = value
        pof2 <<= 1
        round_no += 1
    # Phase 3: inverse rotation -- slot i now holds the block that
    # originated at rank (rank - i) mod P.
    result: list[object] = [None] * size
    for i in range(size):
        result[(rank - i) % size] = blocks[i]
    if data is not None:
        result[rank] = data[rank]
    return result


def bruck_round_count(size: int) -> int:
    """Rounds Bruck needs for ``size`` ranks (diagnostics/tests)."""
    return max(0, math.ceil(math.log2(size))) if size > 1 else 0


def alltoallv(
    ep: "Endpoint",
    send_sizes: typing.Sequence[float],
    data: typing.Sequence[object] | None = None,
) -> typing.Generator:
    """Vector all-to-all: ``send_sizes[i]`` bytes go to rank ``i``.

    All receives are posted up front, then sends issue in a pairwise
    schedule (step ``i`` sends to ``rank + i``); everything completes
    inside this one call -- hence bounding case 1 and the paper's FT
    behaviour.
    """
    begin_collective(ep)
    size, rank = ep.size, ep.rank
    if len(send_sizes) != size:
        raise ValueError(f"need {size} send sizes, got {len(send_sizes)}")
    if data is not None and len(data) != size:
        raise ValueError(f"need {size} data blocks, got {len(data)}")
    tag = coll_tag(ep)
    result: list[object] = [None] * size
    # Own block: local copy.
    if data is not None:
        result[rank] = data[rank]
    if size == 1:
        return result

    recv_reqs = {}
    for step in range(1, size):
        src = (rank - step) % size
        recv_reqs[src] = yield from ep.irecv(src, tag)
    send_reqs = []
    for step in range(1, size):
        dst = (rank + step) % size
        send_reqs.append(
            (
                yield from ep.isend(
                    dst, tag, send_sizes[dst], data[dst] if data is not None else None
                )
            )
        )
    yield from ep.wait_all(send_reqs + list(recv_reqs.values()))
    for src, req in recv_reqs.items():
        result[src] = req.data
    return result
