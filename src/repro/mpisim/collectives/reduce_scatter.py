"""Reduce-scatter: elementwise reduction, block-distributed result."""

from __future__ import annotations

import typing

from repro.mpisim.collectives.alltoall import alltoallv
from repro.mpisim.collectives.util import default_op

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint


def reduce_scatter(
    ep: "Endpoint",
    blocks: typing.Sequence[object],
    block_nbytes: float,
    op: typing.Callable[[object, object], object] | None = None,
) -> typing.Generator:
    """Reduce ``blocks[i]`` across ranks; rank ``i`` returns the reduced
    block ``i``.

    Pairwise-exchange algorithm: one alltoallv moves every contribution to
    its owner, who folds locally -- the large-message reduce_scatter
    schedule (each rank sends/receives ``(P-1)`` blocks).
    """
    if op is None:
        op = default_op
    if len(blocks) != ep.size:
        raise ValueError(f"need {ep.size} blocks, got {len(blocks)}")
    sizes = [block_nbytes] * ep.size
    received = yield from alltoallv(ep, sizes, list(blocks))
    result = None
    for contribution in received:
        result = contribution if result is None else op(result, contribution)
    return result
