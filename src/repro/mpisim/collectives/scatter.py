"""Linear scatter from a root."""

from __future__ import annotations

import typing

from repro.mpisim.collectives.util import begin_collective, coll_tag

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint


def scatter(
    ep: "Endpoint",
    root: int,
    nbytes: float,
    blocks: typing.Sequence[object] | None = None,
) -> typing.Generator:
    """Distribute ``blocks[i]`` (given at the root) to rank ``i``.

    Returns this rank's block.
    """
    begin_collective(ep)
    size, rank = ep.size, ep.rank
    tag = coll_tag(ep)
    if rank == root:
        if blocks is not None and len(blocks) != size:
            raise ValueError(f"need {size} blocks, got {len(blocks)}")
        reqs = []
        for dst in range(size):
            if dst != root:
                reqs.append(
                    (
                        yield from ep.isend(
                            dst, tag, nbytes,
                            blocks[dst] if blocks is not None else None,
                        )
                    )
                )
        yield from ep.wait_all(reqs)
        return blocks[root] if blocks is not None else None
    req = yield from ep.irecv(root, tag)
    yield from ep.wait(req)
    return req.data


def scatterv(
    ep: "Endpoint",
    root: int,
    nbytes_list: typing.Sequence[float] | None,
    blocks: typing.Sequence[object] | None = None,
) -> typing.Generator:
    """Variable-size scatter: rank ``i`` receives ``nbytes_list[i]`` bytes.

    ``nbytes_list`` (and ``blocks``) are significant at the root only.
    Returns this rank's block.
    """
    begin_collective(ep)
    size, rank = ep.size, ep.rank
    tag = coll_tag(ep)
    if rank == root:
        if nbytes_list is None or len(nbytes_list) != size:
            raise ValueError(f"root needs {size} sizes")
        if blocks is not None and len(blocks) != size:
            raise ValueError(f"need {size} blocks, got {len(blocks)}")
        reqs = []
        for dst in range(size):
            if dst != root:
                reqs.append(
                    (
                        yield from ep.isend(
                            dst, tag, nbytes_list[dst],
                            blocks[dst] if blocks is not None else None,
                        )
                    )
                )
        yield from ep.wait_all(reqs)
        return blocks[root] if blocks is not None else None
    req = yield from ep.irecv(root, tag)
    yield from ep.wait(req)
    return req.data
