"""Linear gather to a root."""

from __future__ import annotations

import typing

from repro.mpisim.collectives.util import begin_collective, coll_tag

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint


def gather(
    ep: "Endpoint", root: int, nbytes: float, data: object = None
) -> typing.Generator:
    """Collect every rank's block at ``root``.

    Returns the list of blocks (rank-indexed) at the root, ``None``
    elsewhere.
    """
    begin_collective(ep)
    size, rank = ep.size, ep.rank
    tag = coll_tag(ep)
    if rank != root:
        req = yield from ep.isend(root, tag, nbytes, data)
        yield from ep.wait(req)
        return None
    result: list[object] = [None] * size
    result[root] = data
    reqs = {}
    for src in range(size):
        if src != root:
            reqs[src] = yield from ep.irecv(src, tag)
    yield from ep.wait_all(list(reqs.values()))
    for src, req in reqs.items():
        result[src] = req.data
    return result


def gatherv(
    ep: "Endpoint",
    root: int,
    nbytes: float,
    data: object = None,
) -> typing.Generator:
    """Variable-size gather: each rank contributes its own ``nbytes``.

    Same schedule as :func:`gather`; the per-rank sizes only affect wire
    time.  Returns the rank-indexed blocks at the root, None elsewhere.
    """
    begin_collective(ep)
    size, rank = ep.size, ep.rank
    tag = coll_tag(ep)
    if rank != root:
        req = yield from ep.isend(root, tag, nbytes, data)
        yield from ep.wait(req)
        return None
    result: list[object] = [None] * size
    result[root] = data
    reqs = {}
    for src in range(size):
        if src != root:
            reqs[src] = yield from ep.irecv(src, tag)
    yield from ep.wait_all(list(reqs.values()))
    for src, req in reqs.items():
        result[src] = req.data
    return result
