"""Allreduce as reduce-to-zero plus broadcast.

(MPICH-style small-message allreduce; adequate for the NAS kernels, which
use allreduce for residuals and checksums.)
"""

from __future__ import annotations

import typing

from repro.mpisim.collectives.bcast import bcast
from repro.mpisim.collectives.reduce import reduce

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint


def allreduce(
    ep: "Endpoint",
    value: object,
    nbytes: float,
    op: typing.Callable[[object, object], object] | None = None,
) -> typing.Generator:
    """Reduce ``value`` across all ranks and return the result everywhere."""
    reduced = yield from reduce(ep, 0, value, nbytes, op)
    result = yield from bcast(ep, 0, nbytes, reduced)
    return result
