"""Ring allgather."""

from __future__ import annotations

import typing

from repro.mpisim.collectives.util import begin_collective, coll_tag

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint


def allgather(
    ep: "Endpoint", nbytes: float, data: object = None
) -> typing.Generator:
    """Gather every rank's ``nbytes`` block onto every rank (ring schedule).

    Returns a list indexed by rank.  ``P - 1`` steps; in step ``s`` each
    rank forwards the block it received in step ``s - 1``.
    """
    begin_collective(ep)
    size, rank = ep.size, ep.rank
    result: list[object] = [None] * size
    result[rank] = data
    if size == 1:
        return result
    right = (rank + 1) % size
    left = (rank - 1) % size
    carried = data
    carried_owner = rank
    for step in range(size - 1):
        tag = coll_tag(ep, step)
        send_req = yield from ep.isend(right, tag, nbytes, carried)
        recv_req = yield from ep.irecv(left, tag)
        yield from ep.wait_all([send_req, recv_req])
        carried_owner = (carried_owner - 1) % size
        carried = recv_req.data
        result[carried_owner] = carried
    return result
