"""Binomial-tree reduction."""

from __future__ import annotations

import typing

from repro.mpisim.collectives.util import begin_collective, coll_tag, default_op

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint


def reduce(
    ep: "Endpoint",
    root: int,
    value: object,
    nbytes: float,
    op: typing.Callable[[object, object], object] | None = None,
) -> typing.Generator:
    """Reduce ``value`` (scalar or array) to ``root``; returns the reduced
    value at the root and ``None`` elsewhere.

    ``nbytes`` is the wire size of one contribution.  ``op`` defaults to
    elementwise sum and must be associative.
    """
    begin_collective(ep)
    if op is None:
        op = default_op
    size, rank = ep.size, ep.rank
    if size == 1:
        return value
    tag = coll_tag(ep)
    vrank = (rank - root) % size
    result = value

    mask = 1
    while mask < size:
        if vrank & mask == 0:
            peer = vrank | mask
            if peer < size:
                req = yield from ep.irecv((peer + root) % size, tag)
                yield from ep.wait(req)
                result = op(result, req.data)
        else:
            parent = ((vrank & ~mask) + root) % size
            req = yield from ep.isend(parent, tag, nbytes, result)
            yield from ep.wait(req)
            return None
        mask <<= 1
    return result
