"""Inclusive prefix reduction (MPI_Scan): linear chain."""

from __future__ import annotations

import typing

from repro.mpisim.collectives.util import begin_collective, coll_tag, default_op

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint


def scan(
    ep: "Endpoint",
    value: object,
    nbytes: float,
    op: typing.Callable[[object, object], object] | None = None,
) -> typing.Generator:
    """Inclusive scan: rank ``r`` returns ``op`` folded over ranks 0..r.

    Linear chain (each rank waits for its predecessor's prefix, combines,
    and forwards) -- O(P) latency, the textbook small-message algorithm.
    """
    begin_collective(ep)
    if op is None:
        op = default_op
    size, rank = ep.size, ep.rank
    tag = coll_tag(ep)
    result = value
    if rank > 0:
        req = yield from ep.irecv(rank - 1, tag)
        yield from ep.wait(req)
        result = op(req.data, value)
    if rank < size - 1:
        req = yield from ep.isend(rank + 1, tag, nbytes, result)
        yield from ep.wait(req)
    return result
