"""Dissemination barrier: ceil(log2 P) rounds of small messages."""

from __future__ import annotations

import typing

from repro.mpisim.collectives.util import begin_collective, coll_tag

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint

#: Token size for barrier/notification messages (bytes on the wire).
TOKEN_BYTES = 4


def barrier(ep: "Endpoint") -> typing.Generator:
    """Dissemination barrier.

    In round ``k`` each rank signals ``(rank + 2^k) mod P`` and waits for a
    signal from ``(rank - 2^k) mod P``; after all rounds every rank has
    transitively heard from every other.
    """
    begin_collective(ep)
    size, rank = ep.size, ep.rank
    if size == 1:
        return
    k = 0
    dist = 1
    while dist < size:
        tag = coll_tag(ep, k)
        send_req = yield from ep.isend((rank + dist) % size, tag, TOKEN_BYTES)
        recv_req = yield from ep.irecv((rank - dist) % size, tag)
        yield from ep.wait_all([send_req, recv_req])
        dist <<= 1
        k += 1
