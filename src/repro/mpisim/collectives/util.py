"""Shared helpers for collective algorithms."""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.endpoint import Endpoint


def coll_tag(ep: "Endpoint", round_no: int = 0) -> int:
    """Tag for the current collective invocation (round-disambiguated).

    Collectives are invoked in the same order on every rank (an MPI
    requirement), so a per-endpoint invocation counter yields matching
    tags without negotiation.
    """
    base = 1 << 20
    return base + ep.coll_seq * 64 + round_no


def begin_collective(ep: "Endpoint") -> None:
    """Advance the collective invocation counter."""
    ep.coll_seq += 1


def default_op(a: object, b: object) -> object:
    """Default reduction operator (elementwise / scalar sum)."""
    if a is None or b is None:
        return None
    return a + b  # numpy arrays broadcast; scalars add
