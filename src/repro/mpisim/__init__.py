"""Simulated two-sided message-passing library (MPI-like).

This package models the communication-library layer of the paper's two MPI
subjects -- Open MPI 1.0.1 and MVAPICH2 0.6.5 -- on top of the
:mod:`repro.netsim` substrate:

* an **eager protocol** for short messages (copy through pre-registered
  bounce buffers, :mod:`repro.mpisim.protocols.eager`);
* three **rendezvous protocols** for long messages: Open MPI's default
  pipelined-RDMA scheme, the direct RDMA-Read scheme selected by
  ``mpi_leave_pinned`` (also MVAPICH2's zero-copy design), and a
  single-shot RDMA-Write variant
  (:mod:`repro.mpisim.protocols.rendezvous_pipelined` /
  ``rendezvous_rget`` / ``rendezvous_rput``);
* a **polling progress engine**: protocol state advances only while the
  host process executes library code (:mod:`repro.mpisim.progress`) -- the
  single-threaded, synchronous-completion architecture the paper cites as
  the cause of poor overlap;
* tag/source **matching** with posted and unexpected queues
  (:mod:`repro.mpisim.matching`);
* the application-facing :class:`~repro.mpisim.communicator.Comm` with
  point-to-point, probe, and collective operations, every public call
  instrumented through :class:`repro.core.monitor.Monitor`.

Applications are generator coroutines: ``yield from comm.send(...)``.
"""

from repro.mpisim.config import MpiConfig, mvapich2_like, openmpi_like
from repro.mpisim.communicator import Comm
from repro.mpisim.request import Request
from repro.mpisim.status import ANY_SOURCE, ANY_TAG, MpiError, Status

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "MpiConfig",
    "MpiError",
    "Request",
    "Status",
    "mvapich2_like",
    "openmpi_like",
]
