"""Library configuration and the Open MPI / MVAPICH2 presets.

The paper evaluates three communication stacks.  The two MPI stacks differ
in protocol choice and thresholds, not in machinery, so a single
:class:`MpiConfig` captures both:

* ``openmpi_like()`` -- Sec. 3.5: eager for short messages; for long
  messages either the default **pipelined RDMA** scheme ("a long message is
  fragmented ... the sender pipelines the remaining fragments" after an
  acknowledgment) or, with ``mpi_leave_pinned`` set, **direct RDMA** with a
  most-recently-used registration cache;
* ``mvapich2_like()`` -- "MVAPICH2 implements put and get routines ...
  Rendezvous transfer is zero-copy, with the sending user's buffer being
  pinned on-the-fly and the receiver doing an RDMA Read on this buffer."
"""

from __future__ import annotations

import dataclasses

from repro.core.measures import DEFAULT_BIN_EDGES
from repro.faults.plan import ResilienceParams

#: Rendezvous protocol selector values.
RNDV_PIPELINED = "pipelined"
RNDV_RGET = "rget"
RNDV_RPUT = "rput"

_VALID_RNDV = (RNDV_PIPELINED, RNDV_RGET, RNDV_RPUT)


@dataclasses.dataclass(frozen=True)
class MpiConfig:
    """Tunable knobs of the simulated MPI library."""

    #: Human-readable identity, recorded in reports.
    name: str = "mpi"
    #: Messages of at most this many bytes go eagerly.
    eager_limit: int = 64 * 1024
    #: Eager wire mechanism: "send" (send channel, Open MPI style) or
    #: "rdma_write" (write into pre-registered receive buffers with a
    #: notification, MVAPICH2 style).
    eager_mode: str = "send"
    #: Long-message protocol: pipelined / rget / rput.
    rndv_mode: str = RNDV_PIPELINED
    #: Fragment size for the pipelined scheme.
    frag_size: int = 128 * 1024
    #: Registration caching (Open MPI's ``mpi_leave_pinned``): buffers stay
    #: pinned and re-registration is free on cache hits.
    leave_pinned: bool = False
    #: Registration-cache entry budget when ``leave_pinned`` is on.
    regcache_entries: int = 128
    #: Rails used to stripe pipelined fragments.
    nics_per_node: int = 1
    #: Whether the library build carries the instrumentation.
    instrument: bool = True
    #: CPU cost of stamping one instrumentation event (Fig. 20 model).
    overhead_per_event: float = 25e-9
    #: Alltoall schedule: "pairwise" (large-message) or "bruck"
    #: (log-round, small-message).
    alltoall_algorithm: str = "pairwise"
    #: Circular event queue capacity.
    queue_capacity: int = 4096
    #: Message-size-range edges for the per-size breakdown.
    bin_edges: tuple[float, ...] = DEFAULT_BIN_EDGES
    #: Ack/retransmission tuning for the reliable send channel.  ``None``
    #: (the default) disables the transport sublayer entirely -- required
    #: for bit-identical fault-free runs, and the right choice whenever
    #: ``NetworkParams.faults`` injects no packet faults.
    resilience: ResilienceParams | None = None

    def __post_init__(self) -> None:
        if self.eager_limit < 0:
            raise ValueError("eager_limit must be non-negative")
        if self.frag_size <= 0:
            raise ValueError("frag_size must be positive")
        if self.rndv_mode not in _VALID_RNDV:
            raise ValueError(
                f"rndv_mode must be one of {_VALID_RNDV}, got {self.rndv_mode!r}"
            )
        if self.eager_mode not in ("send", "rdma_write"):
            raise ValueError(
                f"eager_mode must be 'send' or 'rdma_write', got {self.eager_mode!r}"
            )
        if self.alltoall_algorithm not in ("pairwise", "bruck"):
            raise ValueError(
                "alltoall_algorithm must be 'pairwise' or 'bruck', got "
                f"{self.alltoall_algorithm!r}"
            )
        if self.nics_per_node < 1:
            raise ValueError("nics_per_node must be >= 1")
        if self.overhead_per_event < 0:
            raise ValueError("overhead_per_event must be non-negative")


def openmpi_like(leave_pinned: bool = False, **overrides: object) -> MpiConfig:
    """Open MPI 1.0.1-style configuration.

    ``leave_pinned=False`` selects the default pipelined-RDMA rendezvous;
    ``leave_pinned=True`` selects direct RDMA with registration caching
    (the paper's ``mpi_leave_pinned`` run-time parameter).
    """
    base = dict(
        name="openmpi-leavepinned" if leave_pinned else "openmpi",
        eager_limit=64 * 1024,
        rndv_mode=RNDV_RGET if leave_pinned else RNDV_PIPELINED,
        frag_size=128 * 1024,
        leave_pinned=leave_pinned,
    )
    base.update(overrides)
    return MpiConfig(**base)  # type: ignore[arg-type]


def mvapich2_like(**overrides: object) -> MpiConfig:
    """MVAPICH2 0.6.5-style configuration: RDMA-write eager, zero-copy
    RDMA-read rendezvous with on-the-fly pinning plus registration cache."""
    base = dict(
        name="mvapich2",
        eager_limit=12 * 1024,  # VBUF-based eager threshold of the 0.6.x era
        eager_mode="rdma_write",  # eager goes into pre-registered buffers
        rndv_mode=RNDV_RGET,
        leave_pinned=True,
    )
    base.update(overrides)
    return MpiConfig(**base)  # type: ignore[arg-type]
