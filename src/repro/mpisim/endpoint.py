"""Per-rank library endpoint: state + the polling progress engine.

The endpoint owns everything one MPI process's library layer holds: the
matching queues, in-flight protocol states, the registration cache, the
monitor, and -- critically -- :meth:`Endpoint.poll`, the **polling
progress engine**.  Protocol state advances *only* inside ``poll``, and
``poll`` runs only while the application executes library code.  This is
the paper's explanatory mechanism: "Polling progress in these libraries
requires that communicating processes make frequent calls that invoke the
progress engine to ensure continuous transfer progress."

All methods that consume simulated CPU time are generator coroutines.
"""

from __future__ import annotations

import typing

import numpy as np

from repro.core.monitor import Monitor, NullMonitor
from repro.mpisim.config import MpiConfig
from repro.mpisim.matching import MatchingEngine, UnexpectedMsg
from repro.mpisim.packets import (
    AckPacket,
    CtsPacket,
    EagerPacket,
    FinPacket,
    ReliableEnvelope,
    RtsPacket,
    is_control_packet,
)
from repro.mpisim.request import Request
from repro.mpisim.status import ANY_SOURCE, ANY_TAG, MpiError, Status
from repro.netsim.fabric import Fabric
from repro.netsim.memory import RegistrationCache
from repro.netsim.nic import InboundPacket, Nic
from repro.sim import Engine
from repro.sim.events import Event, Timeout

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.protocols.base import RendezvousProtocol

MonitorLike = typing.Union[Monitor, NullMonitor]


class SendState:
    """Sender-side record of one in-flight rendezvous message."""

    __slots__ = (
        "seq",
        "req",
        "dest",
        "tag",
        "nbytes",
        "data",
        "bufkey",
        "xfer_id",
        "frags_pending",
        "protocol",
    )

    def __init__(
        self,
        seq: int,
        req: Request,
        dest: int,
        tag: int,
        nbytes: float,
        data: object,
        bufkey: object,
        protocol: "RendezvousProtocol",
    ) -> None:
        self.seq = seq
        self.req = req
        self.dest = dest
        self.tag = tag
        self.nbytes = nbytes
        self.data = data
        self.bufkey = bufkey
        self.xfer_id: int = -1
        self.frags_pending = 0
        self.protocol = protocol


class RecvState:
    """Receiver-side record of one in-flight rendezvous message."""

    __slots__ = ("seq", "req", "src", "tag", "nbytes", "remaining", "xfer_id", "protocol")

    def __init__(
        self,
        seq: int,
        req: Request,
        src: int,
        tag: int,
        nbytes: float,
        protocol: "RendezvousProtocol",
    ) -> None:
        self.seq = seq
        self.req = req
        self.src = src
        self.tag = tag
        self.nbytes = nbytes
        self.remaining = 0.0
        self.xfer_id: int = -1
        self.protocol = protocol


class _UnackedSend:
    """Sender-side record of one reliable-channel packet awaiting its ack."""

    __slots__ = ("tseq", "dest", "nbytes", "env", "attempt", "timer")

    def __init__(self, tseq: int, dest: int, nbytes: float, env: ReliableEnvelope) -> None:
        self.tseq = tseq
        self.dest = dest
        self.nbytes = nbytes
        self.env = env
        #: Retransmissions performed so far (attempt k backs off by backoff**k).
        self.attempt = 0
        self.timer: Timeout | None = None


class Endpoint:
    """One rank's communication-library instance."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        rank: int,
        size: int,
        config: MpiConfig,
        monitor: MonitorLike,
    ) -> None:
        self.engine = engine
        self.fabric = fabric
        self.params = fabric.params
        self.rank = rank
        self.size = size
        self.config = config
        self.monitor = monitor
        self.nics: list[Nic] = fabric.nics_of(rank)[: config.nics_per_node]
        self.matching = MatchingEngine()
        self.regcache = RegistrationCache(
            self.params,
            max_entries=config.regcache_entries if config.leave_pinned else 0,
        )
        self.sends: dict[int, SendState] = {}
        self.recvs: dict[tuple[int, int], RecvState] = {}
        self._seq = 0
        self._rail_rr = 0
        #: Collective invocation counter (drives collective tag agreement).
        self.coll_seq = 0
        #: Local completions (CQ entries with stamping contexts) not yet
        #: drained; MPI_Finalize polls until this reaches zero.
        self.pending_local_completions = 0
        #: Reliable send channel (None = raw sends, the bit-identical path).
        self.resilience = config.resilience
        #: Per-sender transport sequence counter for reliable envelopes.
        self._tseq = 0
        #: tseq -> in-flight reliable packet (the watchdog dumps its size).
        self._unacked: dict[int, _UnackedSend] = {}
        #: Per-peer tseq sets already delivered (duplicate suppression).
        self._seen_tseq: dict[int, set[int]] = {}
        # Resilience counters (surfaced through repro.metrics).
        self.packets_retransmitted = 0
        self.duplicates_suppressed = 0
        self.retries_exhausted = 0
        self.acks_sent = 0
        # Late-bound to break the import cycle with the protocol modules.
        from repro.mpisim.protocols import make_protocol

        self.protocol: "RendezvousProtocol" = make_protocol(config.rndv_mode)

    # -- small helpers -------------------------------------------------------
    def busy(self, seconds: float):
        """CPU occupancy: a timeout event (yield it to spend the time)."""
        return Timeout(self.engine, seconds)

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def nic_for(self, rank: int, rail: int = 0) -> Nic:
        return self.fabric.nic(rank, rail)

    def next_rail(self) -> Nic:
        """Round-robin rail selection for fragment striping."""
        nic = self.nics[self._rail_rr % len(self.nics)]
        self._rail_rr += 1
        return nic

    @property
    def control_size(self) -> float:
        return self.params.control_packet_size

    # ======================================================================
    # Progress engine
    # ======================================================================
    def poll(self) -> typing.Generator:
        """Drain all pending CQ entries and inbound packets; returns True if
        anything was processed.

        Every drained item costs one ``poll_cost`` of CPU; an empty poll
        costs one ``poll_cost`` (the check itself).  Handlers may consume
        further CPU (copies, pinning, posting).
        """
        elapse = self.engine.elapse
        poll_cost = self.params.poll_cost
        nics = self.nics
        t = elapse(poll_cost)
        if t is not None:
            yield t
        progressed = False
        if len(nics) == 1:
            # Single-rail fast path: the overwhelmingly common topology, and
            # this generator is the hottest in the library -- skip the rail
            # scan and the per-item kind tuple.  Drain order (CQ before
            # inbound, one poll_cost per item) is identical to the general
            # path below.
            nic = nics[0]
            cq = nic.cq
            inbound = nic.inbound
            while True:
                if cq:
                    progressed = True
                    t = elapse(poll_cost)
                    if t is not None:
                        yield t
                    action = cq.popleft().context
                    if action is not None:
                        result = action()
                        if result is not None:
                            yield from result
                elif inbound:
                    progressed = True
                    t = elapse(poll_cost)
                    if t is not None:
                        yield t
                    yield from self._dispatch_packet(inbound.popleft())
                else:
                    return progressed
        while True:
            item: tuple[str, object] | None = None
            for nic in nics:
                if nic.cq:
                    item = ("cq", nic.cq.popleft())
                    break
                if nic.inbound:
                    item = ("in", nic.inbound.popleft())
                    break
            if item is None:
                break
            progressed = True
            t = elapse(poll_cost)
            if t is not None:
                yield t
            kind, payload = item
            if kind == "cq":
                action = payload.context  # type: ignore[union-attr]
                if action is not None:
                    result = action()
                    if result is not None:
                        yield from result
            else:
                yield from self._dispatch_packet(
                    typing.cast(InboundPacket, payload)
                )
        return progressed

    # -- reliable send channel ---------------------------------------------
    def post_send_channel(
        self, dest: int, nbytes: float, payload: object, context: object = None
    ) -> None:
        """Post one send-channel packet, reliably when resilience is armed.

        Without :class:`~repro.faults.plan.ResilienceParams` this is a raw
        ``post_send`` (byte-identical to the pre-resilience library).  With
        it, the payload travels inside a :class:`ReliableEnvelope` and a
        retransmit timer backs it until the receiver's ack arrives.
        Retransmissions are transport-level: they fire from timer context
        with no CPU charge and no CQ context, exactly like a NIC firmware
        retry invisible to the host.
        """
        nic = self.nics[0]
        dst = self.nic_for(dest)
        if self.resilience is None:
            nic.post_send(dst, nbytes, payload, context=context)
            return
        self._tseq += 1
        env = ReliableEnvelope(self._tseq, self.rank, payload)
        state = _UnackedSend(self._tseq, dest, nbytes, env)
        self._unacked[state.tseq] = state
        nic.post_send(dst, nbytes, env, context=context)
        self._arm_retransmit(state)

    def _arm_retransmit(self, state: _UnackedSend) -> None:
        r = self.resilience
        assert r is not None
        timer = Timeout(self.engine, r.ack_timeout * (r.backoff ** state.attempt))
        state.timer = timer

        def on_timer(_ev: Event) -> None:
            if state.tseq not in self._unacked:
                return  # acked between firing and processing
            if state.attempt >= r.max_retries:
                # Retry budget exhausted: abandon the packet.  The operation
                # it belonged to will never complete -- reporting that is
                # the watchdog's job, not the transport's.
                del self._unacked[state.tseq]
                self.retries_exhausted += 1
                self._kick_ranks()
                return
            state.attempt += 1
            self.packets_retransmitted += 1
            self.nics[0].post_send(
                self.nic_for(state.dest), state.nbytes, state.env, context=None
            )
            self._arm_retransmit(state)

        timer.callbacks.append(on_timer)  # type: ignore[union-attr]

    def _on_ack(self, pkt: AckPacket) -> None:
        state = self._unacked.pop(pkt.tseq, None)
        if state is None:
            return  # duplicate ack, or ack of an abandoned packet
        if state.timer is not None:
            state.timer.cancel()

    def _kick_ranks(self) -> None:
        """Wake any blocked poll loop so it re-evaluates its predicate.

        Used when transport state changes without NIC activity on this
        endpoint (retry budget exhausted): a Finalize blocked on
        ``quiescent`` must notice the abandoned packet.
        """
        for nic in self.nics:
            nic._kick()

    def attach_metrics(self, registry: typing.Any, labels: dict | None = None) -> None:
        """Register resilience counters on a MetricsRegistry."""
        labels = labels or {}
        registry.sampled_counter(
            "repro_mpi_packets_retransmitted",
            lambda: self.packets_retransmitted,
            help="Reliable-channel packets retransmitted after ack timeout",
            labels=labels,
        )
        registry.sampled_counter(
            "repro_mpi_duplicates_suppressed",
            lambda: self.duplicates_suppressed,
            help="Reliable-channel envelopes dropped as already delivered",
            labels=labels,
        )
        registry.sampled_counter(
            "repro_mpi_retries_exhausted",
            lambda: self.retries_exhausted,
            help="Reliable-channel packets abandoned after the retry budget",
            labels=labels,
        )
        registry.sampled_counter(
            "repro_mpi_acks_sent",
            lambda: self.acks_sent,
            help="Transport acks posted for received reliable envelopes",
            labels=labels,
        )

    def _dispatch_packet(self, pkt: InboundPacket) -> typing.Generator:
        payload = pkt.payload
        if isinstance(payload, ReliableEnvelope):
            # Ack unconditionally -- the previous ack may have been lost --
            # then suppress duplicates before the protocol layer sees them.
            t = self.engine.elapse(self.params.post_cost)
            if t is not None:
                yield t
            self.acks_sent += 1
            self.nics[0].post_send(
                self.nic_for(payload.src),
                self.control_size,
                AckPacket(payload.tseq, self.rank),
                context=None,
            )
            seen = self._seen_tseq.setdefault(payload.src, set())
            if payload.tseq in seen:
                self.duplicates_suppressed += 1
                return
            seen.add(payload.tseq)
            payload = payload.payload
        elif isinstance(payload, AckPacket):
            self._on_ack(payload)
            return
        if isinstance(payload, EagerPacket):
            yield from self._on_eager(payload)
        elif isinstance(payload, RtsPacket):
            yield from self._on_rts(payload)
        elif isinstance(payload, CtsPacket):
            st = self.sends.get(payload.seq)
            if st is None:
                raise MpiError(f"CTS for unknown send seq {payload.seq}")
            yield from st.protocol.on_cts(self, st)
        elif isinstance(payload, FinPacket):
            if payload.to_sender:
                st = self.sends.pop(payload.seq, None)
                if st is None:
                    raise MpiError(f"FIN for unknown send seq {payload.seq}")
                yield from st.protocol.on_fin_to_sender(self, st)
            else:
                rst = self.recvs.pop((payload.src, payload.seq), None)
                if rst is None:
                    raise MpiError(f"FIN for unknown recv {payload.src}/{payload.seq}")
                yield from rst.protocol.on_fin_to_receiver(self, rst, payload.data)
        else:
            raise MpiError(f"unknown packet payload {payload!r}")

    # -- arrival handlers ------------------------------------------------------
    def _on_eager(self, pkt: EagerPacket) -> typing.Generator:
        req = self.matching.match_arrival(pkt.src, pkt.tag, pkt.ctx)
        if req is None:
            self.matching.add_unexpected(
                UnexpectedMsg("eager", pkt.seq, pkt.src, pkt.tag, pkt.nbytes,
                              pkt.data, 0.0, pkt.ctx)
            )
            return
        yield from self._deliver_eager(req, pkt.src, pkt.tag, pkt.nbytes, pkt.data)

    def _deliver_eager(
        self, req: Request, src: int, tag: int, nbytes: float, data: object
    ) -> typing.Generator:
        """Copy an eager message out of library buffers into the user buffer.

        The receiver never observed the initiation ("the initiation of the
        send is transparent to the receiver"), so this stamps an END-only
        event -- bounding case 3.  Rank-to-self messages moved no network
        bytes and stamp nothing.
        """
        t = self.engine.elapse(self.params.copy_time(nbytes))
        if t is not None:
            yield t
        if src != self.rank:
            self.monitor.xfer_end_only(nbytes)
        req.complete(Status(src, tag, nbytes), data)

    def _on_rts(self, pkt: RtsPacket) -> typing.Generator:
        req = self.matching.match_arrival(pkt.src, pkt.tag, pkt.ctx)
        if req is None:
            self.matching.add_unexpected(
                UnexpectedMsg("rts", pkt.seq, pkt.src, pkt.tag, pkt.nbytes,
                              pkt.frag_data, pkt.frag_nbytes, pkt.ctx)
            )
            return
        yield from self._start_rendezvous_recv(
            req, pkt.seq, pkt.src, pkt.tag, pkt.nbytes, pkt.frag_nbytes, pkt.frag_data
        )

    def _start_rendezvous_recv(
        self,
        req: Request,
        seq: int,
        src: int,
        tag: int,
        nbytes: float,
        frag_nbytes: float,
        frag_data: object,
    ) -> typing.Generator:
        rst = RecvState(seq, req, src, tag, nbytes, self.protocol)
        self.recvs[(src, seq)] = rst
        yield from rst.protocol.start_recv(self, rst, frag_nbytes, frag_data)

    # ======================================================================
    # Point-to-point internals (no CALL_ENTER/EXIT stamping -- the Comm
    # wrapper owns call demarcation; collectives reuse these directly)
    # ======================================================================
    def isend(
        self,
        dest: int,
        tag: int,
        nbytes: float,
        data: object = None,
        bufkey: object = None,
        context: int = 0,
    ) -> typing.Generator:
        """Start a send; returns the :class:`Request`."""
        self._check_peer(dest)
        if tag < 0:
            raise MpiError(f"send tag must be non-negative, got {tag}")
        # Like the real libraries, every entry into the library opportunistically
        # runs the progress engine (this is where earlier sends' completions
        # are typically reaped).
        yield from self.poll()
        req = Request("send", self.rank, dest, tag, nbytes, context)
        if dest == self.rank:
            yield from self._self_send(req, tag, nbytes, data, context)
            return req
        if nbytes <= self.config.eager_limit:
            yield from self._eager_send(req, dest, tag, nbytes, data, context)
        else:
            seq = self.next_seq()
            st = SendState(
                seq, req, dest, tag, nbytes, _buffer_snapshot(data),
                bufkey if bufkey is not None else ("send", dest, tag, nbytes),
                self.protocol,
            )
            self.sends[seq] = st
            yield from st.protocol.start_send(self, st)
        return req

    def _eager_send(
        self, req: Request, dest: int, tag: int, nbytes: float, data: object,
        context: int = 0,
    ) -> typing.Generator:
        """Eager protocol: buffer the message and post it; the send request
        completes locally (buffered semantics).  The XFER_END is stamped by
        whichever later call drains the local completion.

        Two wire mechanisms (config.eager_mode): Open MPI posts on the
        send channel (local completion when the DMA drains the bounce
        buffer); MVAPICH2 RDMA-writes into the receiver's pre-registered
        buffers with a notification (local completion at remote placement).
        """
        t = self.engine.elapse(self.params.copy_time(nbytes))
        if t is not None:
            yield t
        t = self.engine.elapse(self.params.post_cost)
        if t is not None:
            yield t
        xid = self.monitor.xfer_begin(nbytes)
        pkt = EagerPacket(self.next_seq(), self.rank, tag, nbytes,
                          _buffer_snapshot(data), context)

        def on_send_done() -> None:
            self.monitor.xfer_end(xid, nbytes)

        if self.config.eager_mode == "rdma_write":
            self.nics[0].post_rdma_write(
                self.nic_for(dest),
                nbytes + self.control_size,
                context=self.track_local(on_send_done),
                notify_payload=pkt,
            )
        else:
            self.post_send_channel(
                dest,
                nbytes + self.control_size,
                pkt,
                context=self.track_local(on_send_done),
            )
        req.complete()

    def _self_send(
        self, req: Request, tag: int, nbytes: float, data: object,
        context: int = 0,
    ) -> typing.Generator:
        """Rank-to-self message: a local copy, no network, no XFER events."""
        t = self.engine.elapse(self.params.copy_time(nbytes))
        if t is not None:
            yield t
        snapshot = _buffer_snapshot(data)
        posted = self.matching.match_arrival(self.rank, tag, context)
        if posted is not None:
            posted.complete(Status(self.rank, tag, nbytes), snapshot)
        else:
            self.matching.add_unexpected(
                UnexpectedMsg("eager", self.next_seq(), self.rank, tag, nbytes,
                              snapshot, 0.0, context)
            )
        req.complete()

    def irecv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, context: int = 0
    ) -> typing.Generator:
        """Post a receive; returns the :class:`Request`.

        If a matching arrival is already queued unexpected, it is consumed
        here -- for a rendezvous announcement this is where the data
        transfer is initiated (inside the ``Irecv`` call)."""
        if source != ANY_SOURCE:
            self._check_peer(source)
        yield from self.poll()  # opportunistic progress on library entry
        req = Request("recv", source, self.rank, tag, 0.0, context)
        msg = self.matching.post_recv(req)
        if msg is not None:
            if msg.kind == "eager":
                yield from self._deliver_eager(req, msg.src, msg.tag, msg.nbytes, msg.data)
            else:
                yield from self._start_rendezvous_recv(
                    req, msg.seq, msg.src, msg.tag, msg.nbytes,
                    msg.frag_nbytes, msg.data,
                )
        return req

    def wait_any_activity(self) -> Event:
        """Event that fires at the next CQ entry or packet on *any* rail.

        One event is registered with every rail's waiter list (the rails'
        ``_kick`` tolerates a waiter another rail already fired), replacing
        the per-poll-iteration ``AnyOf([nic.wait_activity() ...])`` rebuild
        -- one allocation instead of ``nics + 1`` on the hottest blocking
        path in the library.
        """
        ev = Event(self.engine)
        for nic in self.nics:
            if nic.inbound or nic.cq:
                ev.succeed()
                return ev
        for nic in self.nics:
            nic._waiters.append(ev)
        return ev

    # -- completion driving ----------------------------------------------------
    def progress_until(self, pred: typing.Callable[[], bool]) -> typing.Generator:
        """Poll until ``pred()`` holds, sleeping on NIC activity when idle."""
        while not pred():
            progressed = yield from self.poll()
            if pred():
                break
            if not progressed:
                yield self.wait_any_activity()

    def wait(self, req: Request) -> typing.Generator:
        """Drive one request to completion; returns its :class:`Status`.

        The ``progress_until`` loop is inlined (no predicate closure): wait
        is the hottest blocking entry point in the library.
        """
        while not req.done:
            progressed = yield from self.poll()
            if req.done:
                break
            if not progressed:
                yield self.wait_any_activity()
        return req.status

    def wait_all(self, reqs: typing.Sequence[Request]) -> typing.Generator:
        """Drive several requests to completion; returns their statuses."""
        while not all(r.done for r in reqs):
            progressed = yield from self.poll()
            if all(r.done for r in reqs):
                break
            if not progressed:
                yield self.wait_any_activity()
        return [r.status for r in reqs]

    def wait_any(self, reqs: typing.Sequence[Request]) -> typing.Generator:
        """Drive until at least one request completes; returns the index of
        the first completed request (lowest index, MPI_Waitany-style)."""
        if not reqs:
            raise MpiError("wait_any needs at least one request")
        yield from self.progress_until(lambda: any(r.done for r in reqs))
        for i, req in enumerate(reqs):
            if req.done:
                return i
        raise AssertionError("unreachable")  # pragma: no cover

    def wait_some(self, reqs: typing.Sequence[Request]) -> typing.Generator:
        """Drive until at least one request completes; returns the indices
        of every completed request (MPI_Waitsome-style)."""
        if not reqs:
            raise MpiError("wait_some needs at least one request")
        yield from self.progress_until(lambda: any(r.done for r in reqs))
        return [i for i, r in enumerate(reqs) if r.done]

    def test(self, req: Request) -> typing.Generator:
        """One progress poll; returns True if the request completed."""
        if not req.done:
            yield from self.poll()
        return req.done

    def test_all(self, reqs: typing.Sequence[Request]) -> typing.Generator:
        """One progress poll; returns True if every request completed."""
        if not all(r.done for r in reqs):
            yield from self.poll()
        return all(r.done for r in reqs)

    def cancel(self, req: Request) -> typing.Generator:
        """Cancel a posted receive that has not matched yet.

        Returns True if cancelled (the request is then complete with
        ``cancelled`` set); False if it already matched or completed --
        the MPI semantics: cancellation of a matched receive fails.
        Send requests cannot be cancelled (the data may be on the wire).
        """
        yield from self.poll()
        if req.done:
            return False
        if req.kind != "recv":
            raise MpiError("only receive requests can be cancelled")
        if self.matching.cancel_recv(req):
            req.cancelled = True
            req.complete()
            return True
        return False

    def iprobe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, context: int = 0
    ) -> typing.Generator:
        """One progress poll; returns the Status of a matchable arrival, or
        None.  (The poll itself is the SP-tuning mechanism of Sec. 4.3.)"""
        yield from self.poll()
        msg = self.matching.peek(source, tag, context)
        if msg is None:
            return None
        return Status(msg.src, msg.tag, msg.nbytes)

    def probe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, context: int = 0
    ) -> typing.Generator:
        """Block until a matchable arrival is queued; returns its Status."""
        result: list[Status] = []

        def found() -> bool:
            msg = self.matching.peek(source, tag, context)
            if msg is not None:
                result.clear()
                result.append(Status(msg.src, msg.tag, msg.nbytes))
                return True
            return False

        yield from self.progress_until(found)
        return result[0]

    # -- misc -------------------------------------------------------------------
    def _check_peer(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise MpiError(f"peer rank {rank} out of range [0, {self.size})")

    def track_local(self, fn: typing.Callable[[], object]) -> typing.Callable[[], object]:
        """Wrap a CQ context so Finalize knows a completion is pending."""
        self.pending_local_completions += 1

        def wrapper() -> object:
            self.pending_local_completions -= 1
            return fn()

        return wrapper

    def quiescent(self) -> bool:
        """True when no protocol state or stamped completion is outstanding.

        With resilience armed, unacked reliable packets also count as
        outstanding: Finalize keeps polling so late acks are consumed (or
        until the retry budget abandons the packet).
        """
        return (
            not self.sends
            and not self.recvs
            and self.pending_local_completions == 0
            and not self._unacked
            and all(not nic.cq and not nic.inbound for nic in self.nics)
        )

    def finalize(self) -> typing.Generator:
        """Drain outstanding protocol state (the body of ``MPI_Finalize``).

        Without this, late local send completions would be resolved as
        over-optimistic case-3 transfers instead of being observed in the
        finalize call.
        """
        yield from self.progress_until(self.quiescent)

    def send_control(self, dest: int, payload: object) -> typing.Generator:
        """Post a control packet (costs one descriptor post)."""
        if not is_control_packet(payload):
            raise MpiError(
                f"non-control payload routed at control size: {payload!r}"
            )
        t = self.engine.elapse(self.params.post_cost)
        if t is not None:
            yield t
        self.post_send_channel(dest, self.control_size, payload)


def _buffer_snapshot(data: object) -> object:
    """Model send-buffer capture: numpy arrays are copied (the library may
    buffer them); immutable payloads pass through."""
    if isinstance(data, np.ndarray):
        return data.copy()
    if isinstance(data, bytearray):
        return bytes(data)
    return data
