"""Wire envelopes exchanged by the simulated MPI protocols.

Control packets (RTS / CTS / FIN) implement the rendezvous handshakes.
Per the paper's PERUSE-derived terminology (Sec. 2.1), control packets are
**not** part of the message transfer and are never stamped with XFER
events; only packets moving user-message bytes are.
"""

from __future__ import annotations

import typing


class EagerPacket(typing.NamedTuple):
    """Short message sent through bounce buffers; carries the user data."""

    seq: int
    src: int
    tag: int
    nbytes: float
    data: object
    #: Communicator context id (sub-communicators never cross-match).
    ctx: int = 0


class RtsPacket(typing.NamedTuple):
    """Rendezvous request-to-send (control).

    For the pipelined scheme the first user fragment rides along with the
    RTS ("a combined send request plus first fragment descriptor is sent",
    Sec. 3.5); ``frag_nbytes`` > 0 and ``frag_data`` carry it.
    """

    seq: int
    src: int
    tag: int
    nbytes: float
    frag_nbytes: float
    frag_data: object
    #: Communicator context id (sub-communicators never cross-match).
    ctx: int = 0


class CtsPacket(typing.NamedTuple):
    """Receiver's clear-to-send / acknowledgment (control)."""

    seq: int
    src: int  # the *receiver's* rank (sender of this packet)


class FinPacket(typing.NamedTuple):
    """Transfer-complete notification (control).

    ``to_sender`` distinguishes the two directions: the receiver tells the
    sender its buffer was read (rget), or the sender tells the receiver all
    fragments were written (pipelined / rput).  ``data`` carries the payload
    reference for zero-copy completions.
    """

    seq: int
    src: int
    to_sender: bool
    data: object


class ReliableEnvelope(typing.NamedTuple):
    """Transport wrapper for the reliable send channel (resilience mode).

    When :class:`~repro.faults.plan.ResilienceParams` is armed, every
    send-channel packet travels inside an envelope carrying a per-sender
    transport sequence number ``tseq``.  The receiver acks each envelope
    and suppresses duplicates; the sender retransmits unacked envelopes
    with exponential backoff.  The envelope is transport framing, never
    user-message bytes, so it does not change XFER stamping: the inner
    ``payload`` keeps its own classification.
    """

    tseq: int
    src: int
    payload: object


class AckPacket(typing.NamedTuple):
    """Transport-level acknowledgment of one :class:`ReliableEnvelope`.

    Acks are themselves unreliable (they ride the lossy send channel,
    unwrapped); a lost ack merely triggers a retransmission that the
    receiver's duplicate suppression absorbs.
    """

    tseq: int
    src: int  # the *acker's* rank (sender of this packet)


def is_control_packet(payload: object) -> bool:
    """True when ``payload`` moves no user-message bytes on the wire.

    CTS and FIN are always control; an RTS is control unless a pipelined
    first fragment rides along (``frag_nbytes > 0``).  ``data`` fields on
    control packets carry zero-copy buffer *references* for the simulation,
    not wire bytes, so they do not affect the classification.  A reliable
    envelope classifies as its inner payload; acks are pure control.
    """
    if isinstance(payload, ReliableEnvelope):
        payload = payload.payload
    if isinstance(payload, (CtsPacket, FinPacket, AckPacket)):
        return True
    if isinstance(payload, RtsPacket):
        return payload.frag_nbytes <= 0
    return False
