"""Constants, status objects, and errors for the simulated MPI layer."""

from __future__ import annotations

import typing

#: Wildcard source for receives (matches any sender).
ANY_SOURCE = -1
#: Wildcard tag for receives (matches any tag).
ANY_TAG = -1


class MpiError(RuntimeError):
    """Raised on misuse of the simulated MPI API."""


class Status(typing.NamedTuple):
    """Completion status of a receive (source, tag, and byte count)."""

    source: int
    tag: int
    nbytes: float
