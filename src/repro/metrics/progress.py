"""Sweep progress publication for the live dashboard.

:class:`SweepProgress` is the producer half of ``repro.tools.watch``: the
sweep runner reports task completions to it, and it maintains two files
in the metrics directory, each written atomically so a tailing dashboard
never reads a torn state:

* ``sweep.json`` -- the dashboard payload (tasks done/queued, cache
  ratio, throughput, ETA);
* ``metrics.om`` -- the sweep's own :class:`MetricsRegistry` in
  OpenMetrics text, so standard scrapers see the same numbers.

Writes are throttled (at most one per ``min_write_interval`` host
seconds, except the first and last), keeping the publication cost
invisible next to even the cheapest sweep point.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import typing

from repro.metrics.openmetrics import render_openmetrics
from repro.metrics.registry import MetricsRegistry

STATUS_FILENAME = "sweep.json"
OPENMETRICS_FILENAME = "metrics.om"
STATUS_FORMAT_VERSION = 1


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class SweepProgress:
    """Publishes one sweep's live state to a metrics directory.

    Parameters
    ----------
    metrics_dir:
        Directory receiving ``sweep.json`` and ``metrics.om`` (created if
        missing).  ``None`` disables file output (useful when only the
        ``on_update`` hook is wanted, e.g. ``--live`` without
        ``--metrics-dir``).
    label:
        Human-readable sweep name shown by the dashboard.
    registry:
        Registry to expose; defaults to a fresh private one.
    on_update:
        Optional callable receiving the status payload after every
        update -- the in-process ``--live`` renderer hooks in here.
    """

    def __init__(
        self,
        metrics_dir: "str | os.PathLike | None",
        label: str = "sweep",
        registry: "MetricsRegistry | None" = None,
        on_update: "typing.Callable[[dict], None] | None" = None,
        min_write_interval: float = 0.1,
    ) -> None:
        self.metrics_dir = os.fspath(metrics_dir) if metrics_dir is not None else None
        self.label = label
        self.registry = registry if registry is not None else MetricsRegistry()
        self.on_update = on_update
        self.min_write_interval = min_write_interval
        self.total = 0
        self.done = 0
        self.cached = 0
        self.failed = 0
        self.jobs = 1
        self.busy_seconds = 0.0
        self._t0 = time.monotonic()
        self._last_write = float("-inf")
        self._last_name = ""
        self._finished = False
        self._tasks = self.registry.counter(
            "repro_sweep_tasks", "Sweep tasks completed",
            labels={"outcome": "run"},
        )
        self._tasks_cached = self.registry.counter(
            "repro_sweep_tasks", labels={"outcome": "cached"},
        )
        self._tasks_failed = self.registry.counter(
            "repro_sweep_tasks", labels={"outcome": "failed"},
        )
        self._task_seconds = self.registry.histogram(
            "repro_sweep_task_seconds", "Host seconds per executed sweep task",
        )
        self._utilization = self.registry.gauge(
            "repro_sweep_worker_utilization",
            "Busy worker-seconds over jobs * wall seconds",
        )
        self.registry.sampled_gauge(
            "repro_sweep_tasks_queued", lambda: self.total - self.done,
            "Sweep tasks not yet finished",
        )
        self.registry.sampled_gauge(
            "repro_sweep_elapsed_seconds", lambda: self.elapsed,
            "Host seconds since the sweep started",
        )

    # -- lifecycle ---------------------------------------------------------
    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._t0

    def start(self, total: int, jobs: int = 1) -> None:
        self.total = total
        self.jobs = max(1, jobs)
        self._t0 = time.monotonic()
        self._publish(force=True)

    def task_done(self, duration: float, cached: bool = False,
                  name: str = "", failed: bool = False) -> None:
        """Record one finished task (``duration`` in host seconds).

        ``failed`` marks a cell that ended as a
        :class:`~repro.experiments.runner.FailedTask` (worker exception,
        crash, or cancellation); the dashboard surfaces the count and
        ``watch --once`` exits nonzero on a finished sweep with failures.
        """
        self.done += 1
        if failed:
            self.failed += 1
            self._tasks_failed.inc()
            self.busy_seconds += duration
        elif cached:
            self.cached += 1
            self._tasks_cached.inc()
        else:
            self.busy_seconds += duration
            self._tasks.inc()
            self._task_seconds.observe(duration)
        wall = self.elapsed
        if wall > 0:
            self._utilization.set(
                min(1.0, self.busy_seconds / (self.jobs * wall))
            )
        self._publish(name=name)

    def finish(self) -> None:
        self._finished = True
        self._publish(force=True)

    # -- status payload ------------------------------------------------------
    def status(self, name: str = "") -> dict[str, object]:
        if name:
            self._last_name = name
        executed = self.done - self.cached
        avg = self.busy_seconds / executed if executed else 0.0
        remaining = self.total - self.done
        # ETA assumes remaining tasks are uncached and fan across the pool.
        eta = (avg * remaining / self.jobs) if executed else 0.0
        return {
            "format_version": STATUS_FORMAT_VERSION,
            "label": self.label,
            "total": self.total,
            "done": self.done,
            "cached": self.cached,
            "failed": self.failed,
            "queued": remaining,
            "jobs": self.jobs,
            "elapsed_s": round(self.elapsed, 3),
            "avg_task_s": round(avg, 4),
            "busy_s": round(self.busy_seconds, 3),
            "utilization": round(self._utilization.value, 4),
            "cache_ratio": round(self.cached / self.done, 4) if self.done else 0.0,
            "eta_s": round(eta, 1),
            "last_task": self._last_name,
            "finished": self._finished,
            "updated_unix": time.time(),
        }

    def _publish(self, name: str = "", force: bool = False) -> None:
        payload = self.status(name)
        if self.on_update is not None:
            self.on_update(payload)
        if self.metrics_dir is None:
            return
        now = time.monotonic()
        if not force and not self._finished and (
            now - self._last_write < self.min_write_interval
        ):
            return
        self._last_write = now
        os.makedirs(self.metrics_dir, exist_ok=True)
        _atomic_write(
            os.path.join(self.metrics_dir, STATUS_FILENAME),
            json.dumps(payload, indent=1),
        )
        _atomic_write(
            os.path.join(self.metrics_dir, OPENMETRICS_FILENAME),
            render_openmetrics(self.registry),
        )


def load_status(metrics_dir: "str | os.PathLike") -> "dict[str, object] | None":
    """Read the dashboard payload; ``None`` when no sweep has published."""
    path = os.path.join(os.fspath(metrics_dir), STATUS_FILENAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
