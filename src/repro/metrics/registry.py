"""Low-overhead, allocation-light metrics primitives for self-observability.

The framework's selling point is measuring *applications* without
perturbing them; this registry applies the same standard to the framework
itself.  Three primitive types (:class:`Counter`, :class:`Gauge` with
high-water tracking, :class:`Histogram` with fixed log2 buckets) hang off
an explicit :class:`MetricsRegistry` that is passed down through
constructors -- there is no global registry, so two experiments in one
process never share (or fight over) metric state.

Two registration styles keep the hot paths cheap:

* **stored** metrics (:meth:`MetricsRegistry.counter` & friends) are tiny
  ``__slots__`` objects mutated in place -- one attribute store per
  update, no dict lookups, no allocation;
* **sampled** metrics (:meth:`MetricsRegistry.sampled_gauge` /
  :meth:`sampled_counter`) wrap a zero-argument callable evaluated only
  at collection time.  Components that already maintain plain integer
  diagnostics (``CircularEventQueue.pushed``, ``Engine.processed_count``,
  ...) expose them this way at *zero* per-event cost.

Everything is gated behind a nil-registry fast path: instrumented
components accept ``metrics=None`` and, when ``None``, skip registration
entirely and keep their hot paths byte-for-byte as before.
"""

from __future__ import annotations

import math
import re
import typing

#: Metric and label names follow the OpenMetrics grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket range: upper bounds ``2**k`` for
#: ``k in [lo_exp, hi_exp]``.  The default spans ~1 us .. 16 s, which
#: covers every host-side latency this framework observes.
DEFAULT_LO_EXP = -20
DEFAULT_HI_EXP = 4

LabelDict = typing.Dict[str, str]
LabelKey = typing.Tuple[typing.Tuple[str, str], ...]


class MetricsError(ValueError):
    """Raised on invalid metric names, labels, or kind conflicts."""


def _label_key(labels: "LabelDict | None") -> LabelKey:
    if not labels:
        return ()
    for k, v in labels.items():
        if not _LABEL_RE.match(k):
            raise MetricsError(f"invalid label name {k!r}")
        if not isinstance(v, str):
            raise MetricsError(f"label value for {k!r} must be a string")
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count (events, flushes, cache hits)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Instantaneous value with a high-water mark of everything ever set."""

    __slots__ = ("value", "high_water")
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed log2-bucket histogram: O(1) observe, zero allocation.

    Bucket upper bounds are ``2**k`` for ``k in [lo_exp, hi_exp]`` plus a
    final ``+Inf`` bucket; :func:`math.frexp` finds the bucket in constant
    time with no search.  Counts are stored *per bucket* (not cumulative);
    the OpenMetrics exposition accumulates them at render time.
    """

    __slots__ = ("lo_exp", "hi_exp", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, lo_exp: int = DEFAULT_LO_EXP,
                 hi_exp: int = DEFAULT_HI_EXP) -> None:
        if hi_exp < lo_exp:
            raise MetricsError(f"need hi_exp >= lo_exp, got [{lo_exp}, {hi_exp}]")
        self.lo_exp = lo_exp
        self.hi_exp = hi_exp
        # One slot per finite bound, plus +Inf.
        self.counts = [0] * (hi_exp - lo_exp + 2)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        if value <= 0.0:
            self.counts[0] += 1
            return
        mant, exp = math.frexp(value)  # value = mant * 2**exp, mant in [0.5, 1)
        if mant == 0.5:  # exactly a power of two: lands on its own bound
            exp -= 1
        idx = exp - self.lo_exp
        if idx < 0:
            idx = 0
        elif idx >= len(self.counts):
            idx = len(self.counts) - 1
        self.counts[idx] += 1

    @property
    def bounds(self) -> list[float]:
        """Finite bucket upper bounds (the ``le`` values, sans ``+Inf``)."""
        return [math.ldexp(1.0, k) for k in range(self.lo_exp, self.hi_exp + 1)]


class _Family:
    """All children of one metric name (same kind, distinct label sets)."""

    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        #: label key -> stored metric object, or ``(kind, fn)`` for sampled.
        self.children: dict[LabelKey, object] = {}


class Sample(typing.NamedTuple):
    """One resolved sample at collection time."""

    labels: LabelKey
    value: "float | Histogram"


class FamilySnapshot(typing.NamedTuple):
    """One family resolved at collection time (sampled fns evaluated)."""

    name: str
    kind: str
    help: str
    samples: "list[Sample]"


class MetricsRegistry:
    """Explicit, self-contained home for a process's framework metrics.

    Registration is get-or-create for stored metrics (re-registering the
    same ``(name, labels)`` returns the existing object, so sweep-level
    counters naturally accumulate across runs) and last-writer-wins for
    sampled metrics (a fresh run's component re-points the sampler at its
    own live state).
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # -- registration ------------------------------------------------------
    def _family(self, name: str, kind: str, help: str) -> _Family:
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name, kind, help)
        elif family.kind != kind:
            raise MetricsError(
                f"metric {name!r} already registered as {family.kind}, "
                f"cannot re-register as {kind}"
            )
        if help and not family.help:
            family.help = help
        return family

    def counter(self, name: str, help: str = "",
                labels: "LabelDict | None" = None) -> Counter:
        family = self._family(name, "counter", help)
        key = _label_key(labels)
        child = family.children.get(key)
        if not isinstance(child, Counter):
            child = family.children[key] = Counter()
        return child

    def gauge(self, name: str, help: str = "",
              labels: "LabelDict | None" = None) -> Gauge:
        family = self._family(name, "gauge", help)
        key = _label_key(labels)
        child = family.children.get(key)
        if not isinstance(child, Gauge):
            child = family.children[key] = Gauge()
        return child

    def histogram(self, name: str, help: str = "",
                  labels: "LabelDict | None" = None,
                  lo_exp: int = DEFAULT_LO_EXP,
                  hi_exp: int = DEFAULT_HI_EXP) -> Histogram:
        family = self._family(name, "histogram", help)
        key = _label_key(labels)
        child = family.children.get(key)
        if not isinstance(child, Histogram):
            child = family.children[key] = Histogram(lo_exp, hi_exp)
        return child

    def sampled_counter(self, name: str, fn: typing.Callable[[], float],
                        help: str = "",
                        labels: "LabelDict | None" = None) -> None:
        """Counter whose value is read from ``fn()`` at collection time."""
        family = self._family(name, "counter", help)
        family.children[_label_key(labels)] = ("sampled", fn)

    def sampled_gauge(self, name: str, fn: typing.Callable[[], float],
                      help: str = "",
                      labels: "LabelDict | None" = None) -> None:
        """Gauge whose value is read from ``fn()`` at collection time."""
        family = self._family(name, "gauge", help)
        family.children[_label_key(labels)] = ("sampled", fn)

    # -- collection --------------------------------------------------------
    def collect(self) -> list[FamilySnapshot]:
        """Resolve every family (evaluating sampled callables) in
        registration order."""
        out: list[FamilySnapshot] = []
        for family in self._families.values():
            samples: list[Sample] = []
            for key, child in family.children.items():
                if isinstance(child, tuple):  # ("sampled", fn)
                    samples.append(Sample(key, float(child[1]())))
                elif isinstance(child, Histogram):
                    samples.append(Sample(key, child))
                elif isinstance(child, Gauge):
                    samples.append(Sample(key, child.value))
                else:
                    samples.append(
                        Sample(key, typing.cast(Counter, child).value)
                    )
            out.append(FamilySnapshot(family.name, family.kind, family.help,
                                      samples))
        return out

    def snapshot(self) -> dict[str, object]:
        """Plain-data (JSON-ready) view of every metric.

        Gauges carry their high-water mark; histograms carry per-bucket
        (non-cumulative) counts plus the finite bounds.
        """
        metrics: dict[str, object] = {}
        for family in self._families.values():
            samples = []
            for key, child in family.children.items():
                entry: dict[str, object] = {"labels": dict(key)}
                if isinstance(child, tuple):
                    entry["value"] = float(child[1]())
                elif isinstance(child, Histogram):
                    entry["buckets"] = list(child.counts)
                    entry["bounds"] = child.bounds
                    entry["sum"] = child.sum
                    entry["count"] = child.count
                elif isinstance(child, Gauge):
                    entry["value"] = child.value
                    entry["high_water"] = child.high_water
                else:
                    entry["value"] = typing.cast(Counter, child).value
                samples.append(entry)
            metrics[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return {"format_version": 1, "metrics": metrics}

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families
