"""OpenMetrics v1 text exposition, a minimal parser, and per-rank merging.

The registry's native output is Python objects; this module turns them
into the two interchange forms the tooling consumes:

* **OpenMetrics text** (:func:`render_openmetrics`): the standard
  scrape format -- ``# TYPE`` / ``# HELP`` metadata, ``_total`` counter
  samples, cumulative ``_bucket{le=...}`` histogram samples, terminated
  by ``# EOF``.  :func:`parse_openmetrics` is the matching minimal
  parser used by the round-trip property test and the aggregator.
* **JSON snapshots** (:func:`write_json_snapshot`): the registry's
  :meth:`~repro.metrics.registry.MetricsRegistry.snapshot` payload,
  which keeps gauge high-water marks and per-bucket histogram counts
  that the text format cannot carry.

:class:`MetricsAggregator` merges per-rank (or per-cell) snapshot files
in constant memory: counters and histogram buckets sum, gauges stream
through the same bounded-reservoir statistics the cluster rollup uses,
so merging a thousand rank files costs no more memory than merging two.
"""

from __future__ import annotations

import json
import os
import typing

from repro.metrics.registry import FamilySnapshot, Histogram, MetricsRegistry
from repro.telemetry.rollup import StreamStats

#: Suffix appended to counter sample names, per the OpenMetrics spec.
_COUNTER_SUFFIX = "_total"


def _fmt(value: float) -> str:
    """Exact float formatting: ``repr`` round-trips every finite float."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(labels: typing.Sequence[tuple[str, str]],
                 extra: "tuple[str, str] | None" = None) -> str:
    items = list(labels)
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + body + "}"


def render_openmetrics(registry: MetricsRegistry) -> str:
    """Render the registry as OpenMetrics v1 text (ending in ``# EOF``)."""
    lines: list[str] = []
    for family in registry.collect():
        lines.append(f"# TYPE {family.name} {family.kind}")
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        for labels, value in family.samples:
            if isinstance(value, Histogram):
                cum = 0
                for bound, n in zip(value.bounds, value.counts):
                    cum += n
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_labels_text(labels, ('le', _fmt(bound)))} {cum}"
                    )
                cum += value.counts[-1]
                lines.append(
                    f"{family.name}_bucket"
                    f"{_labels_text(labels, ('le', '+Inf'))} {cum}"
                )
                lines.append(
                    f"{family.name}_count{_labels_text(labels)} {value.count}"
                )
                lines.append(
                    f"{family.name}_sum{_labels_text(labels)} {_fmt(value.sum)}"
                )
            else:
                suffix = _COUNTER_SUFFIX if family.kind == "counter" else ""
                lines.append(
                    f"{family.name}{suffix}{_labels_text(labels)} {_fmt(value)}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(registry: MetricsRegistry,
                      path: "str | os.PathLike") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_openmetrics(registry))


def write_json_snapshot(registry: MetricsRegistry,
                        path: "str | os.PathLike") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(registry.snapshot(), fh, indent=1)


# ---------------------------------------------------------------------------
# Minimal parser (round-trip tests, aggregation of scraped files)
# ---------------------------------------------------------------------------
class ParsedSample(typing.NamedTuple):
    """One exposition line: resolved family, sample suffix, labels, value."""

    family: str
    suffix: str  # "", "_total", "_bucket", "_count", "_sum"
    labels: tuple[tuple[str, str], ...]
    value: float


def _parse_labels(text: str) -> tuple[tuple[str, str], ...]:
    out: list[tuple[str, str]] = []
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq]
        if text[eq + 1] != '"':
            raise ValueError(f"malformed label value near {text[eq:]!r}")
        j = eq + 2
        buf: list[str] = []
        while text[j] != '"':
            ch = text[j]
            if ch == "\\":
                nxt = text[j + 1]
                buf.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                j += 2
            else:
                buf.append(ch)
                j += 1
        out.append((name, "".join(buf)))
        i = j + 1
        if i < len(text) and text[i] == ",":
            i += 1
    return tuple(out)


def parse_openmetrics(text: str) -> "dict[str, dict[str, object]]":
    """Parse exposition text back into ``{family: {kind, help, samples}}``.

    ``samples`` maps ``(suffix, labels)`` (labels sorted, ``le`` included
    for buckets) to the float value.  Only the subset of OpenMetrics the
    renderer emits is supported -- that is the point: the pair forms a
    round trip, which the hypothesis property test exercises.
    """
    families: dict[str, dict[str, object]] = {}
    saw_eof = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families[name] = {"kind": kind, "help": "", "samples": {}}
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            if name in families:
                families[name]["help"] = (
                    help_text.replace("\\n", "\n").replace("\\\\", "\\")
                )
            continue
        if line.startswith("#"):
            continue
        # Sample line: name{labels} value
        if "{" in line:
            name_part, _, rest = line.partition("{")
            label_text, _, value_text = rest.rpartition("} ")
            labels = _parse_labels(label_text)
        else:
            name_part, _, value_text = line.rpartition(" ")
            labels = ()
        family, suffix = _resolve_family(name_part, families)
        value = float(value_text)
        samples = typing.cast("dict", families[family]["samples"])
        samples[(suffix, tuple(sorted(labels)))] = value
    if not saw_eof:
        raise ValueError("exposition text does not end with # EOF")
    return families


def _resolve_family(sample_name: str,
                    families: "dict[str, dict[str, object]]") -> tuple[str, str]:
    """Map a sample name to its (family, suffix) via the TYPE metadata."""
    if sample_name in families and (
        typing.cast("dict", families[sample_name])["kind"] == "gauge"
    ):
        return sample_name, ""
    for suffix in (_COUNTER_SUFFIX, "_bucket", "_count", "_sum"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base, suffix
    if sample_name in families:  # e.g. an untyped or gauge-like family
        return sample_name, ""
    raise ValueError(f"sample {sample_name!r} matches no declared family")


# ---------------------------------------------------------------------------
# Constant-memory per-rank aggregation
# ---------------------------------------------------------------------------
class MetricsAggregator:
    """Streaming merger of JSON metric snapshots (one file in memory at
    a time).

    Counters and histogram buckets add; gauges fold into
    :class:`~repro.telemetry.rollup.StreamStats` (bounded reservoir:
    min / max / mean / percentiles are exact up to ``sample_cap``
    contributors, constant memory beyond).  ``drop_labels`` (default:
    ``rank``) removes per-contributor labels before merging so the same
    metric from every rank lands in one aggregate row.
    """

    def __init__(self, sample_cap: int = 128,
                 drop_labels: typing.Sequence[str] = ("rank",)) -> None:
        self.sample_cap = sample_cap
        self.drop_labels = frozenset(drop_labels)
        self.nfiles = 0
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, StreamStats] = {}
        self._gauge_hiwater: dict[tuple, float] = {}
        self._hists: dict[tuple, dict[str, object]] = {}

    def _key(self, name: str, labels: dict[str, str]) -> tuple:
        kept = tuple(sorted(
            (k, v) for k, v in labels.items() if k not in self.drop_labels
        ))
        return (name, kept)

    def add_snapshot(self, payload: dict[str, object], tag: int = -1) -> None:
        """Fold one registry snapshot in (``tag`` labels reservoir extrema)."""
        if payload.get("format_version") != 1:
            raise ValueError(
                f"unsupported metrics snapshot version "
                f"{payload.get('format_version')!r}"
            )
        self.nfiles += 1
        metrics = typing.cast("dict[str, dict]", payload["metrics"])
        for name, family in metrics.items():
            kind = family["kind"]
            known = self._kinds.setdefault(name, kind)
            if known != kind:
                raise ValueError(
                    f"metric {name!r} is {known} in one file, {kind} in another"
                )
            if family.get("help") and name not in self._help:
                self._help[name] = family["help"]
            for entry in family["samples"]:
                key = self._key(name, entry.get("labels", {}))
                if kind == "counter":
                    self._counters[key] = (
                        self._counters.get(key, 0.0) + float(entry["value"])
                    )
                elif kind == "gauge":
                    stats = self._gauges.get(key)
                    if stats is None:
                        stats = self._gauges[key] = StreamStats(self.sample_cap)
                    stats.add(float(entry["value"]), tag)
                    hw = float(entry.get("high_water", entry["value"]))
                    if hw > self._gauge_hiwater.get(key, float("-inf")):
                        self._gauge_hiwater[key] = hw
                else:  # histogram
                    hist = self._hists.get(key)
                    if hist is None:
                        hist = self._hists[key] = {
                            "bounds": list(entry["bounds"]),
                            "buckets": [0] * len(entry["buckets"]),
                            "sum": 0.0,
                            "count": 0,
                        }
                    if hist["bounds"] != list(entry["bounds"]):
                        raise ValueError(
                            f"histogram {name!r} bucket bounds differ "
                            "across files; cannot merge"
                        )
                    hist["buckets"] = [
                        a + b for a, b in zip(hist["buckets"], entry["buckets"])
                    ]
                    hist["sum"] = typing.cast(float, hist["sum"]) + float(
                        entry["sum"]
                    )
                    hist["count"] = typing.cast(int, hist["count"]) + int(
                        entry["count"]
                    )

    def add_file(self, path: "str | os.PathLike", tag: int = -1) -> None:
        with open(path, "r", encoding="utf-8") as fh:
            self.add_snapshot(json.load(fh), tag)

    def result(self) -> dict[str, object]:
        """Aggregate payload (JSON-ready): one row per merged metric."""
        if not self.nfiles:
            raise ValueError("no snapshots added to the aggregator")

        def rows(keys: typing.Iterable[tuple]) -> typing.Iterator[tuple]:
            for name, labels in sorted(keys):
                yield (name, labels)

        counters = [
            {"name": name, "labels": dict(labels),
             "value": self._counters[(name, labels)]}
            for name, labels in rows(self._counters)
        ]
        gauges = []
        for name, labels in rows(self._gauges):
            st = self._gauges[(name, labels)]
            gauges.append({
                "name": name, "labels": dict(labels),
                "min": st.min, "max": st.max, "mean": st.mean,
                "p50": st.quantile(0.5), "p95": st.quantile(0.95),
                "high_water": self._gauge_hiwater[(name, labels)],
                "contributors": st.count,
            })
        histograms = [
            {"name": name, "labels": dict(labels),
             **self._hists[(name, labels)]}
            for name, labels in rows(self._hists)
        ]
        return {
            "format_version": 1,
            "nfiles": self.nfiles,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def save(self, path: "str | os.PathLike") -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.result(), fh, indent=1)


def aggregate_files(paths: typing.Sequence["str | os.PathLike"],
                    sample_cap: int = 128) -> MetricsAggregator:
    """Merge JSON snapshot files, one at a time (constant memory)."""
    agg = MetricsAggregator(sample_cap=sample_cap)
    for i, path in enumerate(paths):
        agg.add_file(path, tag=i)
    return agg
