"""Framework self-observability: metrics registry, exposition, dashboards.

The measurement framework instruments *applications*; this package
instruments the framework.  A :class:`MetricsRegistry` (explicitly passed
down -- no globals) collects queue, processor, engine, and sweep health
metrics at near-zero hot-path cost; :mod:`repro.metrics.openmetrics`
exposes them as OpenMetrics text and JSON snapshots and merges per-rank
files in constant memory; :mod:`repro.metrics.progress` publishes live
sweep state for ``repro.tools.watch``.

See ``docs/metrics.md`` for the metric catalog.
"""

from repro.metrics.openmetrics import (
    MetricsAggregator,
    aggregate_files,
    parse_openmetrics,
    render_openmetrics,
    write_json_snapshot,
    write_openmetrics,
)
from repro.metrics.progress import SweepProgress, load_status
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsAggregator",
    "MetricsError",
    "MetricsRegistry",
    "SweepProgress",
    "aggregate_files",
    "load_status",
    "parse_openmetrics",
    "render_openmetrics",
    "write_json_snapshot",
    "write_openmetrics",
]
