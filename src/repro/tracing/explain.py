"""Critical-path attribution over a merged host-span trace.

Consumes the Chrome ``trace_event`` JSON written by
:mod:`repro.tracing.merge` and answers the question ROADMAP item 1
needs answered before pushing the sharded engine to thousands of ranks:
*where does the wall-clock actually go?*  The output is a named-bucket
breakdown -- ``X% shard compute, Y% fence wait, Z% channel I/O,
W% queue wait`` -- plus the slowest-shard imbalance.

Attribution model
-----------------
The trace has two kinds of timelines:

* the **spine**: the serial chain of delegations (service submit ->
  queue -> worker -> sweep cell -> coordinator).  At any instant exactly
  one spine stage is responsible for the wall-clock, so a line sweep
  over all spine spans attributes each elementary interval to the
  *innermost* active span (latest start wins -- nesting depth);
* the **shards**: genuinely parallel workers.  Their time is accounted
  through the coordinator's wait intervals: while the coordinator waits
  on shard replies, shards compute.  The wait pool is therefore split
  into *shard compute* (the mean per-shard busy time, i.e. what a
  perfectly balanced run would need), *channel I/O* (mean shard-side
  injection), and the remainder *fence wait* -- the synchronization
  cost the conservative protocol pays, including imbalance.

Everything between the global first span start and last span end that no
spine span covers lands in ``unattributed`` -- the acceptance bar keeps
that under 5%.

``validate_trace`` is the ``--check`` half: structural invariants any
well-formed merged trace must satisfy (closed spans, finite
non-negative timestamps, monotonic per-process end order, named
processes, balanced async pairs).
"""

from __future__ import annotations

import math
import typing

#: Category -> breakdown bucket.  Wait-pool categories (``None``) are
#: split into shard compute / channel I/O / fence wait after the sweep.
_WAIT = None
SPINE_BUCKETS: "dict[str, str | None]" = {
    "service.http": "service overhead",
    "service.submit": "service overhead",
    "service.execute": "service overhead",
    "service.cache": "cache probe",
    "service.queue": "queue wait",
    "runner.root": "runner overhead",
    "runner.task": "runner overhead",
    "runner.cache": "cache probe",
    "launcher.build": "launcher build",
    "launcher.run": "engine compute",
    "engine.run": "engine compute",
    "launcher.finalize": "finalize/merge",
    "coord.run": "coordination",
    "coord.fence": "fence recompute",
    "coord.flush": "channel I/O",
    "coord.wait": _WAIT,
    "coord.dispatch": _WAIT,
    "coord.finish": "finalize/merge",
}

#: Categories recorded on shard-worker timelines (parallel, not spine).
SHARD_CATEGORIES = ("shard.advance", "shard.inject", "engine.burst")


class _Span(typing.NamedTuple):
    pid: int
    name: str
    cat: str
    ts: float    # seconds
    dur: float   # seconds


def _spans_of(trace: dict) -> "tuple[list[_Span], dict[int, str], dict]":
    names: "dict[int, str]" = {}
    spans: "list[_Span]" = []
    coord_args: dict = {}
    for ev in trace.get("traceEvents", ()):
        ph = ev.get("ph")
        if ph == "M" and ev.get("name") == "process_name":
            names[int(ev["pid"])] = str(ev.get("args", {}).get("name", ""))
        elif ph == "X":
            spans.append(_Span(int(ev.get("pid", 0)), str(ev.get("name", "")),
                               str(ev.get("cat", "")),
                               float(ev.get("ts", 0.0)) / 1e6,
                               float(ev.get("dur", 0.0)) / 1e6))
            if ev.get("cat") == "coord.run":
                coord_args = dict(ev.get("args", {}))
    return spans, names, coord_args


# ---------------------------------------------------------------------------
# --check: structural validation
# ---------------------------------------------------------------------------
def validate_trace(trace: dict) -> "list[str]":
    """Structural problems in a merged trace (empty list == valid)."""
    problems: "list[str]" = []
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    spans, names, _coord = _spans_of(trace)
    if not spans:
        problems.append("no complete ('X') span slices in the trace")
        return problems
    extent = 0.0
    for s in spans:
        if not (math.isfinite(s.ts) and math.isfinite(s.dur)):
            problems.append(f"non-finite timestamp on span {s.name!r}")
        elif s.ts + s.dur > extent:
            extent = s.ts + s.dur
    for s in spans:
        if s.dur < 0.0:
            problems.append(f"negative duration on span {s.name!r} "
                            f"(pid {s.pid})")
        if s.ts < -1e-9:
            problems.append(f"span {s.name!r} starts before the trace "
                            f"anchor (ts={s.ts:.6f}s)")
        if s.cat.endswith(".unclosed") or s.cat == "unclosed":
            problems.append(f"unclosed span {s.name!r} (pid {s.pid}, "
                            f"category {s.cat!r})")
    # Per-process monotonicity: the tracer records spans in end order, so
    # a merged trace whose per-pid end times go backwards was corrupted
    # (or hand-assembled from incomparable clocks).
    last_end: "dict[int, float]" = {}
    for s in spans:
        end = s.ts + s.dur
        if end < last_end.get(s.pid, float("-inf")) - 1e-9:
            problems.append(f"non-monotonic span end order on pid {s.pid} "
                            f"at {s.name!r}")
            break
        last_end[s.pid] = end
    for pid in sorted({s.pid for s in spans}):
        if pid not in names:
            problems.append(f"pid {pid} has spans but no process_name "
                            "metadata")
    # Async begin/end balance (the simulated-time exporter's b/e pairs).
    open_async: "dict[tuple, int]" = {}
    for ev in events:
        ph = ev.get("ph")
        if ph in ("b", "e"):
            key = (ev.get("pid"), ev.get("cat"), ev.get("id"))
            open_async[key] = open_async.get(key, 0) + (1 if ph == "b" else -1)
    for key, depth in open_async.items():
        if depth != 0:
            problems.append(f"unbalanced async span pair {key!r}")
    return problems


# ---------------------------------------------------------------------------
# Critical-path breakdown
# ---------------------------------------------------------------------------
def explain_trace(trace: dict) -> dict:
    """Attribute the trace's wall-clock to named stage buckets."""
    spans, names, coord_args = _spans_of(trace)
    if not spans:
        raise ValueError("trace has no span slices to explain")
    t_lo = min(s.ts for s in spans)
    t_hi = max(s.ts + s.dur for s in spans)
    wall = max(0.0, t_hi - t_lo)

    shard_pids = sorted({s.pid for s in spans if s.cat == "shard.advance"})
    shard_set = set(shard_pids)
    spine = [s for s in spans
             if s.pid not in shard_set and s.cat not in SHARD_CATEGORIES]

    # Line sweep over the spine: attribute each elementary interval to
    # the innermost (latest-started) active span's bucket.
    buckets: "dict[str, float]" = {}
    wait_pool = 0.0
    covered = 0.0
    boundaries: "list[tuple[float, int, int]]" = []
    for idx, s in enumerate(spine):
        boundaries.append((s.ts, 1, idx))
        boundaries.append((s.ts + s.dur, 0, idx))
    boundaries.sort()
    active: "dict[int, _Span]" = {}
    prev_t = t_lo
    bi = 0
    while bi < len(boundaries):
        t = boundaries[bi][0]
        dt = t - prev_t
        if dt > 0.0 and active:
            inner_idx = max(active, key=lambda i: (active[i].ts, i))
            cat = active[inner_idx].cat
            bucket = SPINE_BUCKETS.get(cat, "other")
            covered += dt
            if bucket is _WAIT:
                wait_pool += dt
            else:
                buckets[bucket] = buckets.get(bucket, 0.0) + dt
        while bi < len(boundaries) and boundaries[bi][0] == t:
            _t, is_open, idx = boundaries[bi]
            if is_open:
                active[idx] = spine[idx]
            else:
                active.pop(idx, None)
            bi += 1
        prev_t = t

    # Split the coordinator's wait pool using what shards actually did.
    shard_busy = {pid: 0.0 for pid in shard_pids}
    shard_inject = {pid: 0.0 for pid in shard_pids}
    for s in spans:
        if s.cat == "shard.advance":
            shard_busy[s.pid] += s.dur
        elif s.cat == "shard.inject":
            shard_inject[s.pid] += s.dur
    # Inline-backend shards execute serially inside the dispatch loop, so
    # the wait pool holds the *sum* of their busy time; process-backend
    # shards run concurrently, so a balanced run only needs the mean.
    serial = coord_args.get("backend") == "inline"
    if shard_pids:
        mean_busy = sum(shard_busy.values()) / len(shard_pids)
        mean_inject = sum(shard_inject.values()) / len(shard_pids)
        pool_busy = sum(shard_busy.values()) if serial else mean_busy
        pool_inject = sum(shard_inject.values()) if serial else mean_inject
    else:
        mean_busy = mean_inject = pool_busy = pool_inject = 0.0
    if wait_pool > 0.0:
        compute = min(wait_pool, pool_busy)
        io_extra = min(pool_inject, wait_pool - compute)
        fence_wait = max(0.0, wait_pool - compute - io_extra)
        if compute:
            buckets["shard compute"] = buckets.get("shard compute", 0.0) + compute
        if io_extra:
            buckets["channel I/O"] = buckets.get("channel I/O", 0.0) + io_extra
        if fence_wait:
            buckets["fence wait"] = buckets.get("fence wait", 0.0) + fence_wait

    unattributed = max(0.0, wall - covered - wait_pool)
    categorized = (1.0 - unattributed / wall) if wall > 0.0 else 1.0

    shards_summary = None
    if shard_pids:
        busiest = max(shard_pids, key=lambda pid: shard_busy[pid])
        shards_summary = {
            "count": len(shard_pids),
            "busy_s": {names.get(pid, str(pid)): round(shard_busy[pid], 6)
                       for pid in shard_pids},
            "mean_busy_s": round(mean_busy, 6),
            "max_busy_s": round(shard_busy[busiest], 6),
            "slowest": names.get(busiest, str(busiest)),
            "imbalance": round(shard_busy[busiest] / mean_busy, 4)
            if mean_busy > 0.0 else 1.0,
        }

    return {
        "wall_s": round(wall, 6),
        "span_count": len(spans),
        "processes": [names[pid] for pid in sorted(names)],
        "buckets_s": {k: round(v, 6)
                      for k, v in sorted(buckets.items(),
                                         key=lambda kv: -kv[1])},
        "unattributed_s": round(unattributed, 6),
        "categorized_frac": round(categorized, 4),
        "shards": shards_summary,
        "trace_id": typing.cast(dict, trace.get("otherData", {})
                                ).get("trace_id", ""),
    }


def render_explain(summary: dict) -> str:
    """Human-readable report of :func:`explain_trace`'s summary."""
    wall = float(summary["wall_s"])
    lines = [
        f"trace {summary.get('trace_id') or '?'}: "
        f"{len(summary['processes'])} processes, "
        f"{summary['span_count']} spans, "
        f"wall-clock {wall * 1e3:.1f} ms",
        "critical-path breakdown (share of wall-clock):",
    ]
    entries = list(summary["buckets_s"].items())
    if float(summary["unattributed_s"]) > 0.0:
        entries.append(("unattributed", float(summary["unattributed_s"])))
    width = max((len(name) for name, _v in entries), default=10)
    for name, seconds in entries:
        pct = 100.0 * seconds / wall if wall > 0.0 else 0.0
        lines.append(f"  {name:<{width}}  {pct:5.1f}%  "
                     f"{seconds * 1e3:9.2f} ms")
    lines.append(f"categorized: "
                 f"{float(summary['categorized_frac']) * 100:.1f}% "
                 "of wall-clock attributed to named stages")
    shards = summary.get("shards")
    if shards:
        lines.append(
            f"shard imbalance: slowest is {shards['slowest']} at "
            f"{float(shards['max_busy_s']) * 1e3:.1f} ms busy vs "
            f"{float(shards['mean_busy_s']) * 1e3:.1f} ms mean "
            f"({float(shards['imbalance']):.2f}x)")
    return "\n".join(lines)
