"""Allocation-light host-time spans with cross-process propagation.

The tracing subsystem applies the paper's own discipline to the
framework: you can only characterize where wall-clock goes by stamping
intervals where the time is actually spent.  It follows the
``repro.metrics`` pattern exactly -- an explicit :class:`Tracer` object
passed down through ``tracer=`` parameters, nil by default, so every hot
path stays byte-for-byte identical when tracing is off (the differential
tests in ``tests/test_tracing.py`` hold reports to bit-identity).

Design constraints, in order:

* **Zero cost when absent.**  Every instrumented call site is a single
  ``if tracer is not None`` guard around the span bookkeeping.
* **Allocation-light when present.**  A finished span is one appended
  7-tuple ``(name, category, start, end, span_id, parent_id, args)``;
  the clock is one ``perf_counter`` call rebased onto a wall-clock
  anchor.  No per-span objects survive past ``end()`` except the tuple.
* **Mergeable across processes.**  Host clocks are per-process;
  :meth:`Tracer.now` therefore reports *epoch* seconds derived from a
  ``time.time()`` anchor plus a ``perf_counter`` offset, so spans from a
  service worker thread, a crash-isolated sweep cell, and four shard
  workers all land on one comparable timeline.  A child process adopts
  its parent's trace via a :class:`SpanContext` wire dict (pickled over
  the existing task pipes -- never via ``Task.args``, which would change
  content-hash cache keys), records its own spans, and ships its payload
  home where :meth:`Tracer.absorb` nests it.

``repro.tracing.merge`` renders the nested payload tree as one Perfetto
``trace_event`` JSON (one pid per process); ``repro.tools.explain``
turns that into a critical-path breakdown.
"""

from __future__ import annotations

import array
import os
import threading
import time
import typing

#: Payload schema version (bump on incompatible layout changes).
PAYLOAD_VERSION = 1

#: Span-record field order inside a payload's ``spans`` list.
SPAN_FIELDS = ("name", "category", "start", "end", "span_id", "parent_id",
               "args")


class SpanRecord(typing.NamedTuple):
    """One finished span, as stored by the tracer (host epoch seconds)."""

    name: str
    category: str
    start: float
    end: float
    span_id: str
    parent_id: "str | None"
    args: "dict | None"


class SpanContext:
    """Serializable identity of one point in a trace: ``(trace, span)``.

    What crosses a process boundary when work is delegated: the child
    builds its own :class:`Tracer` from this context so its spans join
    the parent's trace.  Round-trips exactly through :meth:`to_wire` /
    :meth:`from_wire` (dict, for pickled pipes) and :meth:`to_header` /
    :meth:`from_header` (one string, for HTTP-ish carriers).
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str = "") -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def to_wire(self) -> "dict[str, str]":
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, wire: "dict[str, str]") -> "SpanContext":
        return cls(str(wire["trace_id"]), str(wire.get("span_id", "")))

    def to_header(self) -> str:
        """``trace_id/span_id`` -- ``/`` cannot appear in either part."""
        return f"{self.trace_id}/{self.span_id}"

    @classmethod
    def from_header(cls, header: str) -> "SpanContext":
        trace_id, sep, span_id = header.partition("/")
        if not sep or not trace_id:
            raise ValueError(f"malformed span-context header {header!r}")
        return cls(trace_id, span_id)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, SpanContext)
                and other.trace_id == self.trace_id
                and other.span_id == self.span_id)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:
        return f"SpanContext({self.trace_id!r}, {self.span_id!r})"


class Span:
    """An open span handle: a context manager that records on exit.

    Created by :meth:`Tracer.begin` / :meth:`Tracer.span`; holds only
    scalars.  ``end()`` is idempotent, so a span used both as a context
    manager and ended explicitly records exactly once.
    """

    __slots__ = ("_tracer", "name", "category", "start", "span_id",
                 "parent_id", "args")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 start: float, span_id: str, parent_id: "str | None",
                 args: "dict | None") -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.start = start
        self.span_id = span_id
        self.parent_id = parent_id
        self.args = args

    def annotate(self, **kv: object) -> "Span":
        """Attach key/value details (rendered into the Perfetto args)."""
        if self.args is None:
            self.args = {}
        self.args.update(kv)
        return self

    def end(self) -> None:
        tracer = self._tracer
        if tracer is not None:
            self._tracer = None  # type: ignore[assignment]
            tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.end()


class Tracer:
    """One process's (or logical component's) span recorder.

    ``process`` names the timeline this tracer's spans render on (one
    Perfetto pid per process name).  ``metrics`` (optional
    :class:`~repro.metrics.MetricsRegistry`) additionally feeds every
    finished span into ``repro_trace_spans_total{category=...}`` and
    ``repro_trace_span_seconds{category=...}``, which is how the service
    dashboard shows live per-stage latency.

    The clock: ``now()`` returns epoch seconds as
    ``anchor_epoch + (perf_counter() - anchor_perf)`` -- monotonic
    *within* the process (sub-microsecond resolution) and comparable
    *across* processes to wall-clock sync accuracy, which is what makes
    the merged multi-process timeline coherent.
    """

    def __init__(self, process: str = "main",
                 trace_id: "str | None" = None,
                 parent: "SpanContext | str | None" = None,
                 metrics: "object | None" = None) -> None:
        self.process = process
        self.trace_id = trace_id if trace_id else os.urandom(8).hex()
        if isinstance(parent, SpanContext):
            parent = parent.span_id
        #: span_id (in the parent process's trace) this tracer hangs off.
        self.parent_span_id: "str | None" = parent or None
        self._anchor_epoch = time.time()
        self._anchor_perf = time.perf_counter()
        #: Finished spans, in end order (:meth:`channel` pairs join them
        #: at :meth:`to_payload` time).
        self.spans: "list[tuple]" = []
        #: Absorbed child-process payloads (dicts), in arrival order.
        self.children: "list[dict]" = []
        self._stack: "list[Span]" = []
        self._seq = 0
        self._metrics = metrics
        self._m_count: "dict[str, object]" = {}
        self._m_secs: "dict[str, object]" = {}
        #: Hot-path (start, end) pair buffers keyed by
        #: (name, category, parent_id); see :meth:`channel`.
        self._channels: "dict[tuple, array.array]" = {}
        self._ch_observed: "dict[tuple, int]" = {}

    # -- clock ---------------------------------------------------------------
    def now(self) -> float:
        """Host time in epoch seconds (perf_counter resolution)."""
        return self._anchor_epoch + (time.perf_counter() - self._anchor_perf)

    # -- recording -----------------------------------------------------------
    def _next_id(self) -> str:
        self._seq += 1
        return f"{self.process}:{self._seq}"

    def begin(self, name: str, category: str = "span",
              **args: object) -> Span:
        """Open a span now; pair with ``.end()`` (or use :meth:`span`)."""
        parent = self._stack[-1].span_id if self._stack else self.parent_span_id
        span = Span(self, name, category, self.now(), self._next_id(),
                    parent, dict(args) if args else None)
        self._stack.append(span)
        return span

    # A with-statement alias: ``with tracer.span("x", "cat"): ...``
    span = begin

    def _finish(self, span: Span) -> None:
        end = self.now()
        # Tolerate out-of-order ends (overlapping explicit begin/end
        # pairs): remove wherever the span sits in the open stack.
        stack = self._stack
        if stack and stack[-1] is span:
            stack.pop()
        else:
            try:
                stack.remove(span)
            except ValueError:
                pass
        self.spans.append(SpanRecord(span.name, span.category, span.start,
                                     end, span.span_id, span.parent_id,
                                     span.args))
        if self._metrics is not None:
            self._observe(span.category, end - span.start)

    def add_span(self, name: str, category: str, start: float, end: float,
                 args: "dict | None" = None,
                 parent_id: "str | None" = None) -> str:
        """Record a span retroactively from explicit epoch timestamps.

        For intervals whose start predates the tracer (the HTTP accept
        timestamp) or that were measured without an open handle (the
        tenant-queue wait).  Returns the new span id.
        """
        if parent_id is None:
            parent_id = (self._stack[-1].span_id if self._stack
                         else self.parent_span_id)
        span_id = self._next_id()
        self.spans.append(SpanRecord(name, category, start, end, span_id,
                                     parent_id, args))
        if self._metrics is not None:
            self._observe(category, end - start)
        return span_id

    def channel(self, name: str, category: str) -> "array.array":
        """Preopened append-only buffer for one hot span kind.

        The cheapest recording path there is: the call site keeps the
        returned ``array('d')`` and appends two floats (start, end) per
        span -- no Python objects, no span ids, no args, nothing for the
        GC to track.  The rich :meth:`begin`/:meth:`add_span` APIs cost
        1-2 us per span, which measurably blew the <5% overhead budget
        at tens of thousands of per-fence-round spans; a pair of array
        appends is ~100 ns and keeps the working set compact (16 bytes
        per span) so the simulation's cache behaviour is undisturbed.

        Pairs inherit the innermost span open at channel-creation time
        as their parent and surface as ordinary spans in
        :meth:`to_payload` (sorted into end order, empty span id, no
        args); metrics observation happens lazily at payload time.
        """
        parent = self._stack[-1].span_id if self._stack else self.parent_span_id
        key = (name, category, parent)
        buf = self._channels.get(key)
        if buf is None:
            buf = self._channels[key] = array.array("d")
        return buf

    def _observe(self, category: str, seconds: float) -> None:
        counter = self._m_count.get(category)
        if counter is None:
            metrics = typing.cast(typing.Any, self._metrics)
            counter = self._m_count[category] = metrics.counter(
                "repro_trace_spans_total", "Finished trace spans by category",
                labels={"category": category})
            self._m_secs[category] = metrics.histogram(
                "repro_trace_span_seconds", "Trace span durations by category",
                labels={"category": category})
        counter.inc()  # type: ignore[attr-defined]
        self._m_secs[category].observe(max(0.0, seconds))  # type: ignore[attr-defined]

    # -- propagation ---------------------------------------------------------
    def context(self) -> SpanContext:
        """The innermost open span's context (or the tracer root's)."""
        span_id = self._stack[-1].span_id if self._stack else (
            self.parent_span_id or "")
        return SpanContext(self.trace_id, span_id)

    def child_wire(self, process: str) -> "dict[str, str]":
        """Wire dict a child process adopts to join this trace."""
        ctx = self.context()
        return {"trace_id": ctx.trace_id, "span_id": ctx.span_id,
                "process": process}

    @classmethod
    def adopt(cls, wire: "dict[str, str]",
              metrics: "object | None" = None) -> "Tracer":
        """Build a child-process tracer from a :meth:`child_wire` dict."""
        return cls(process=str(wire.get("process", "child")),
                   trace_id=str(wire["trace_id"]),
                   parent=str(wire.get("span_id", "")), metrics=metrics)

    def absorb(self, payload: "dict | None") -> None:
        """Nest a child process's :meth:`to_payload` under this tracer."""
        if payload is not None:
            self.children.append(payload)

    # -- serialization -------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON/pickle-able dump of this tracer (and absorbed children).

        Spans still open at dump time are exported under ``open`` with
        their start only -- the merge draws them to the trace extent
        with an ``.unclosed`` category suffix, and ``explain --check``
        flags them as structural errors.
        """
        spans = [list(rec) for rec in self.spans]
        for key, buf in self._channels.items():
            name, category, parent = key
            pairs = iter(buf)
            new = [[name, category, s, e, "", parent, None]
                   for s, e in zip(pairs, pairs)]
            if self._metrics is not None:
                # Lazy (and idempotent across repeated dumps): observe
                # only pairs added since the last payload.
                seen = self._ch_observed.get(key, 0)
                for rec in new[seen:]:
                    self._observe(category, rec[3] - rec[2])
                self._ch_observed[key] = len(new)
            spans.extend(new)
        if self._channels:
            spans.sort(key=lambda rec: rec[3])
        return {
            "version": PAYLOAD_VERSION,
            "trace_id": self.trace_id,
            "process": self.process,
            "parent_span_id": self.parent_span_id,
            "spans": spans,
            "open": [[s.name, s.category, s.start, s.span_id, s.parent_id,
                      s.args] for s in self._stack],
            "children": list(self.children),
        }


def payload_spans(payload: dict) -> "list[SpanRecord]":
    """Decode one payload's finished spans back into records."""
    return [SpanRecord(*rec) for rec in payload.get("spans", ())]


# ---------------------------------------------------------------------------
# Ambient current tracer (the in-process propagation shim)
# ---------------------------------------------------------------------------
# Deeply nested call chains (sweep runner -> _run_cell -> run_app) would
# otherwise need a tracer parameter on functions whose *argument tuples
# are content-hash cache keys* (repro.service.jobs builds the exact CLI
# task tuples; adding a tracer arg would silently invalidate every cached
# result and break CLI/service key identity).  The runner therefore
# installs the tracer ambiently around each task; workers that can use
# one pick it up with current_tracer().  Thread-local so concurrent
# service worker threads never see each other's tracer.
_ambient = threading.local()


def current_tracer() -> "Tracer | None":
    """The tracer installed for the current task, or ``None``."""
    return getattr(_ambient, "tracer", None)


def set_current_tracer(tracer: "Tracer | None") -> None:
    _ambient.tracer = tracer


class use_tracer:
    """Context manager installing ``tracer`` as the ambient tracer."""

    __slots__ = ("tracer", "_prev")

    def __init__(self, tracer: "Tracer | None") -> None:
        self.tracer = tracer
        self._prev: "Tracer | None" = None

    def __enter__(self) -> "Tracer | None":
        self._prev = current_tracer()
        set_current_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *_exc: object) -> None:
        set_current_tracer(self._prev)
