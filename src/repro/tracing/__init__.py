"""End-to-end host-time span tracing (HTTP submit -> per-shard engine).

Public surface:

* :class:`Tracer` / :class:`Span` / :class:`SpanContext` /
  :class:`SpanRecord` -- the span recorder (``repro.tracing.span``);
* :func:`current_tracer` / :func:`set_current_tracer` / :class:`use_tracer`
  -- the ambient in-process propagation shim;
* :func:`build_trace` / :func:`save_trace` / :func:`flatten_payloads` /
  :func:`payload_spans` -- merge payload trees into one Perfetto JSON
  (``repro.tracing.merge``);
* :func:`explain_trace` / :func:`validate_trace` / :func:`render_explain`
  -- critical-path attribution (``repro.tracing.explain``), fronted by
  the ``repro.tools.explain`` CLI.
"""

from repro.tracing.explain import (explain_trace, render_explain,
                                   validate_trace)
from repro.tracing.merge import build_trace, flatten_payloads, save_trace
from repro.tracing.span import (PAYLOAD_VERSION, Span, SpanContext,
                                SpanRecord, Tracer, current_tracer,
                                payload_spans, set_current_tracer,
                                use_tracer)

__all__ = [
    "PAYLOAD_VERSION",
    "Span",
    "SpanContext",
    "SpanRecord",
    "Tracer",
    "build_trace",
    "current_tracer",
    "explain_trace",
    "flatten_payloads",
    "payload_spans",
    "render_explain",
    "save_trace",
    "set_current_tracer",
    "use_tracer",
    "validate_trace",
]
