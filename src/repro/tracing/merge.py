"""Merge multi-process span payloads into one Perfetto trace JSON.

Each :class:`~repro.tracing.span.Tracer` payload is one process's span
list plus the payloads it absorbed from its children (sweep cells, shard
workers).  This module flattens that tree, assigns one Perfetto pid per
process, rebases every timestamp to the earliest span (so the timeline
starts near zero instead of at the unix epoch), and renders complete
("X") slices through the existing
:class:`~repro.telemetry.perfetto.ChromeTraceExporter` -- the same
exporter the simulated-time timeline uses, so one toolchain serves both
simulated and host traces.

Spans left open at export time are drawn to the trace extent with an
``.unclosed`` category suffix; ``repro.tools.explain --check`` treats
them as structural errors.
"""

from __future__ import annotations

import json
import os
import typing

from repro.telemetry.perfetto import TID_SPANS, ChromeTraceExporter
from repro.tracing.span import SpanRecord, Tracer, payload_spans

Source = typing.Union[Tracer, dict, typing.Sequence[dict]]


def _as_payloads(source: Source) -> "list[dict]":
    if isinstance(source, Tracer):
        return [source.to_payload()]
    if isinstance(source, dict):
        return [source]
    return [p.to_payload() if isinstance(p, Tracer) else p for p in source]


def flatten_payloads(source: Source) -> "list[dict]":
    """Depth-first list of every process payload in the tree.

    Deterministic: parents precede children, siblings keep absorb order,
    so pid assignment is stable for a given run.
    """
    out: "list[dict]" = []

    def visit(payload: dict) -> None:
        out.append(payload)
        for child in payload.get("children", ()):
            visit(child)

    for payload in _as_payloads(source):
        visit(payload)
    return out


def _extent(processes: "list[tuple[dict, list[SpanRecord]]]"
            ) -> "tuple[float, float]":
    t0, t1 = float("inf"), float("-inf")
    for payload, spans in processes:
        for rec in spans:
            if rec.start < t0:
                t0 = rec.start
            if rec.end > t1:
                t1 = rec.end
        for item in payload.get("open", ()):
            start = float(item[2])
            t0 = min(t0, start)
            t1 = max(t1, start)
    if t0 == float("inf"):
        t0 = t1 = 0.0
    return t0, max(t0, t1)


def build_trace(source: Source) -> "dict[str, object]":
    """Render the payload tree as a Chrome ``trace_event`` JSON object."""
    flat = flatten_payloads(source)
    processes = [(payload, payload_spans(payload)) for payload in flat]
    t0, t1 = _extent(processes)
    exporter = ChromeTraceExporter()
    trace_id = str(flat[0].get("trace_id", "")) if flat else ""
    for pid0, (payload, spans) in enumerate(processes):
        pid = pid0 + 1
        exporter.add_process(pid, str(payload.get("process", f"proc {pid}")),
                             sort_index=pid)
        for rec in spans:
            args: "dict[str, object]" = {"span": rec.span_id}
            if rec.parent_id:
                args["parent"] = rec.parent_id
            if rec.args:
                args.update(rec.args)
            exporter.add_complete_slice(pid, TID_SPANS, rec.name,
                                        rec.category, rec.start - t0,
                                        rec.end - t0, args)
        for item in payload.get("open", ()):
            name, category, start, span_id = item[0], item[1], float(item[2]), item[3]
            exporter.add_complete_slice(
                pid, TID_SPANS, str(name), f"{category}.unclosed",
                start - t0, t1 - t0, {"span": span_id, "unclosed": True})
    trace = exporter.to_dict()
    other = typing.cast(dict, trace["otherData"])
    other.update({
        "exporter": "repro.tracing.merge",
        "time_unit": "us (host)",
        "trace_id": trace_id,
        "anchor_unix": t0,
        "processes": [str(p.get("process", "")) for p in flat],
    })
    return trace


def save_trace(path: "str | os.PathLike", source: Source
               ) -> "dict[str, object]":
    """Build and write the merged trace; returns the trace dict."""
    trace = build_trace(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=None, separators=(",", ":"))
    return trace
