"""NIC model: DMA engines, wire serialization, completion queues.

The defining property reproduced here is **OS-bypass autonomy**: once the
host posts a work request, the NIC moves the data on its own.  Host CPUs
learn of progress only by polling the completion queue or the inbound
packet queue -- there are no interrupts, matching the polling-mode
operation of the libraries the paper instruments.

Timing model (cut-through with port contention):

* a message of ``n`` bytes occupies the sender's TX port for
  ``n / bandwidth`` seconds, FIFO per port;
* the first byte reaches the receiver after ``latency``;
* the receiver's RX port is also a FIFO resource, so incast traffic
  serializes at the destination;
* RDMA Read adds a request latency before the *target's* TX port streams
  the data back, with no target-CPU involvement.
"""

from __future__ import annotations

import collections
import enum
import typing

import numpy as np

from repro.netsim import channel as _ch
from repro.netsim.params import NetworkParams
from repro.sim import Engine, Event

if typing.TYPE_CHECKING:
    from repro.faults.inject import FaultInjector
    from repro.netsim.fabric import Fabric

# Stream-family discriminator for per-link latency-jitter RNGs (mixed into
# the derived seed so jitter never shares a stream with the fault families
# in repro.faults.inject, which occupy 1 and 2).
_FAMILY_JITTER = 3

# Per-NIC burst streams (see ``Nic._burst_at``).  Each stream's completion
# times are monotone non-decreasing by construction, which is what lets a
# contiguous run coalesce into one Burst macro-event:
#  * TX -- local send completions, paced by ``tx_busy_until``;
#  * RX -- arrivals/placements at this NIC, paced by ``rx_busy_until``;
#  * CTL -- RDMA-read requests, ``now`` + a constant request latency.
_STREAM_TX = 0
_STREAM_RX = 1
_STREAM_CTL = 2


class CompletionKind(enum.Enum):
    """What a completion-queue entry signifies."""

    SEND_DONE = "send_done"
    RDMA_WRITE_DONE = "rdma_write_done"
    RDMA_READ_DONE = "rdma_read_done"


class CompletionEntry(typing.NamedTuple):
    """One CQ entry, polled by the owning process."""

    kind: CompletionKind
    context: object
    nbytes: float


class InboundPacket(typing.NamedTuple):
    """A message that arrived at this NIC's RX port."""

    src_node: int
    payload: object
    nbytes: float


class TransferRecord(typing.NamedTuple):
    """Ground-truth physical transfer interval (simulator-side knowledge).

    The real system cannot observe these ("the precise times for
    NIC-initiated data transfer events is unknown to the host processor");
    the simulator records them so the derived bounds can be validated
    against the truth (see ``repro.experiments.validation``).
    """

    src: int
    dst: int
    nbytes: float
    start: float
    end: float
    kind: str  # "send" | "rdma_write" | "rdma_read"


class Nic:
    """One network port of one node."""

    def __init__(
        self,
        engine: Engine,
        params: NetworkParams,
        node: int,
        port: int = 0,
        seed: int = 0,
        injector: "FaultInjector | None" = None,
        transfer_log: "list[TransferRecord] | None" = None,
        fabric: "Fabric | None" = None,
    ) -> None:
        self.engine = engine
        self.params = params
        self.node = node
        self.port = port
        #: Fabric seed; per-link jitter streams derive from it lazily.
        self._seed = seed
        #: Per-destination jitter RNGs, keyed by (dst_node, dst_port).
        #: Seeding each directed link independently keeps jitter replayable
        #: even when sweep workers interleave traffic differently.
        self._jitter: dict[tuple[int, int], typing.Any] = {}
        #: Live fault state shared across the fabric (None = healthy).
        self._inj = injector
        #: Fabric-wide ground-truth transfer log (None = not recording).
        self._transfer_log = transfer_log
        #: FIFO availability of the TX wire.
        self.tx_busy_until = 0.0
        #: FIFO availability of the RX wire (incast serialization).
        self.rx_busy_until = 0.0
        #: Packets that have fully arrived, awaiting a host poll.
        self.inbound: "collections.deque[InboundPacket]" = collections.deque()
        #: Completion queue, awaiting a host poll.
        self.cq: "collections.deque[CompletionEntry]" = collections.deque()
        self._waiters: list[Event] = []
        #: Whether completions ride the burst macro-event fast path.
        self._fast = params.network_path == "fast"
        #: Channel delivery: all cross-NIC effects go through the fabric's
        #: router as :class:`~repro.netsim.channel.ChannelMsg` records.
        self._channel = params.delivery == "channel"
        #: Owning fabric (routing + key allocation; channel mode only).
        self._fabric = fabric
        #: Completion contexts of in-flight RDMA verbs, keyed by token.
        #: Contexts are host-side objects (often closures); in channel mode
        #: only the token crosses the wire and the context is resolved here
        #: when the ACK / read data comes back.
        self._rdma_ctx: dict[int, object] = {}
        self._rdma_token = 0
        #: Open burst per stream (TX / RX / CTL), created lazily.
        self._bursts: "list[object | None]" = [None, None, None]
        # Traffic counters (diagnostics / tests).
        self.bytes_sent = 0.0
        self.bytes_received = 0.0
        self.messages_sent = 0
        self.messages_received = 0

    # -- host-side waiting -------------------------------------------------
    def wait_activity(self) -> Event:
        """Event that fires at the next CQ entry or packet arrival.

        A blocked polling loop sleeps on this instead of busy-spinning the
        simulation clock.  If something is already pending the event fires
        immediately.
        """
        ev = Event(self.engine)
        if self.inbound or self.cq:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def _kick(self) -> None:
        waiters = self._waiters
        if not waiters:
            return
        self._waiters = []
        for ev in waiters:
            # A waiter shared across rails (Endpoint.wait_any_activity) may
            # have been fired by another NIC's kick already.
            if not ev.triggered:
                ev.succeed()

    def _at(self, when: float, fn: typing.Callable[[Event], None]) -> None:
        """Run ``fn`` at absolute simulation time ``when`` (per-packet path).

        ``fn`` receives (and ignores) the completion event, which lets it
        be registered directly as a callback -- no adapter closure per
        scheduled completion.
        """
        engine = self.engine
        if when < engine.now:
            when = engine.now
        engine.post_at(when).callbacks.append(fn)  # type: ignore[union-attr]

    def _burst_at(
        self, stream: int, when: float, fn: typing.Callable[[Event], None]
    ) -> None:
        """Fast path: append a completion to this NIC's ``stream`` burst.

        Sub-events allocate their engine sequence number here, at the same
        program point :meth:`_at` would, and the engine retires them in
        exact global ``(when, seq)`` order -- so coalescing is invisible to
        everything above the NIC.  If the stream's open burst cannot
        tail-extend (``when`` regressed, which the monotone stream clocks
        make rare-to-impossible), the burst is closed and a fresh one
        opened: per-packet behavior is the degenerate one-sub-burst case.
        """
        engine = self.engine
        if when < engine.now:
            when = engine.now
        burst = self._bursts[stream]
        if burst is None:
            burst = self._bursts[stream] = engine.new_burst()
        ev = burst.try_at(when)
        if ev is None:
            burst.close()
            burst = self._bursts[stream] = engine.new_burst()
            ev = burst.try_at(when)
        ev.callbacks.append(fn)  # type: ignore[union-attr]

    # -- timing helpers ------------------------------------------------------
    def _latency(self, dst: "Nic") -> float:
        """Per-message wire latency on the link to ``dst``.

        Jitter (when enabled) comes from a lazily created stream seeded by
        ``(seed, family, src, src_port, dst, dst_port)``: each directed
        link owns its own RNG, so the draw sequence on one link is a pure
        function of that link's traffic.  Straggler nodes see all their
        latencies scaled.
        """
        p = self.params
        if p.latency_jitter_frac <= 0.0:
            lat = p.latency
        else:
            key = (dst.node, dst.port)
            rng = self._jitter.get(key)
            if rng is None:
                rng = self._jitter[key] = np.random.default_rng(
                    (self._seed, _FAMILY_JITTER, self.node, self.port,
                     dst.node, dst.port)
                )
            swing = p.latency_jitter_frac * (2.0 * rng.random() - 1.0)
            lat = p.latency * (1.0 + swing)
        if self._inj is not None:
            lat *= self._inj.straggler_factor(self.node)
        return lat

    def _tx_stream(self, nbytes: float) -> float:
        """Occupy this NIC's TX port; returns the TX completion time.

        Each message costs its serialization time plus the NIC's
        per-message processing overhead (the message-rate limit).  Under a
        fault plan the start is pushed past stall windows, overhead scales
        with the node's straggler factor, and serialization scales with
        any degradation window covering the start.
        """
        start = max(self.engine.now, self.tx_busy_until)
        if self._inj is not None:
            inj = self._inj
            start = inj.stall_adjust(self.node, start)
            end = (
                start
                + self.params.per_message_overhead * inj.straggler_factor(self.node)
                + self.params.wire_time(nbytes) * inj.degrade_factor(self.node, start)
            )
        else:
            end = start + self.params.per_message_overhead + self.params.wire_time(nbytes)
        self.tx_busy_until = end
        return end

    @staticmethod
    def _rx_stream(dst: "Nic", first_byte: float, nbytes: float) -> float:
        """Occupy ``dst``'s RX port; returns the full-arrival time."""
        start = max(first_byte, dst.rx_busy_until)
        inj = dst._inj
        if inj is not None:
            start = inj.stall_adjust(dst.node, start)
            end = start + dst.params.wire_time(nbytes) * inj.degrade_factor(dst.node, start)
        else:
            end = start + dst.params.wire_time(nbytes)
        dst.rx_busy_until = end
        return end

    # -- verbs -------------------------------------------------------------
    def post_send(
        self,
        dst: "Nic",
        nbytes: float,
        payload: object,
        context: object = None,
    ) -> None:
        """Two-sided send: deliver ``payload`` to ``dst``'s inbound queue.

        A ``SEND_DONE`` CQ entry appears locally once the DMA engine has
        drained the host buffer (TX completion).

        Send-channel packets are the lossy part of the fabric: under a
        fault plan a packet may be silently dropped on the wire (the TX
        port is still consumed and ``SEND_DONE`` still fires -- the sender
        NIC cannot tell), delivered twice, or delayed past later traffic.
        RDMA verbs model reliable-connection hardware and never lose data.
        """
        self._check_dst(dst)
        verdict = None
        if self._inj is not None:
            verdict = self._inj.roll(self.node, dst.node)
        tx_end = self._tx_stream(nbytes)
        self.bytes_sent += nbytes
        self.messages_sent += 1

        def local_complete(_ev: Event) -> None:
            self.cq.append(CompletionEntry(CompletionKind.SEND_DONE, context, nbytes))
            self._kick()

        if self._channel:
            if self._fast:
                self._burst_at(_STREAM_TX, tx_end, local_complete)
            else:
                self._at(tx_end, local_complete)
            if verdict is not None and verdict.drop:
                return
            first_byte = tx_end - self.params.wire_time(nbytes) + self._latency(dst)
            self._fabric.channel_send(_ch.ChannelMsg(
                when=first_byte,
                key=self._fabric.next_channel_key(
                    self.node, self.port, dst.node, dst.port),
                kind=_ch.DELIVER,
                src_node=self.node, src_port=self.port,
                dst_node=dst.node, dst_port=dst.port,
                nbytes=nbytes, payload=payload,
                extra=(
                    tx_end,
                    verdict is not None and verdict.duplicate,
                    verdict is not None and verdict.reorder,
                ),
            ))
            return

        if verdict is not None and verdict.drop:
            # The wire ate the packet: local completion only, no arrival.
            if self._fast:
                self._burst_at(_STREAM_TX, tx_end, local_complete)
            else:
                self._at(tx_end, local_complete)
            return

        first_byte = tx_end - self.params.wire_time(nbytes) + self._latency(dst)
        arrival = self._rx_stream(dst, first_byte, nbytes)
        if verdict is not None and verdict.reorder:
            # Held in the switch, overtaken by packets posted after it.
            arrival += self._inj.plan.reorder_delay

        def deliver(_ev: Event) -> None:
            dst.inbound.append(InboundPacket(self.node, payload, nbytes))
            dst.bytes_received += nbytes
            dst.messages_received += 1
            dst._kick()

        if self._fast:
            self._burst_at(_STREAM_TX, tx_end, local_complete)
            dst._burst_at(_STREAM_RX, arrival, deliver)
            if verdict is not None and verdict.duplicate:
                dst._burst_at(_STREAM_RX, arrival, deliver)
        else:
            self._at(tx_end, local_complete)
            self._at(arrival, deliver)
            if verdict is not None and verdict.duplicate:
                self._at(arrival, deliver)
        self._record(dst, nbytes, tx_end, arrival, "send")

    def post_rdma_write(
        self,
        dst: "Nic",
        nbytes: float,
        context: object = None,
        notify_payload: object = None,
    ) -> None:
        """One-sided write into ``dst``'s memory; no target CPU involvement.

        The local ``RDMA_WRITE_DONE`` CQ entry appears when the data has
        been placed remotely.  If ``notify_payload`` is given, a
        zero-extra-cost notification packet (write-with-immediate) lands in
        ``dst``'s inbound queue at arrival time.
        """
        self._check_dst(dst)
        tx_end = self._tx_stream(nbytes)
        first_byte = tx_end - self.params.wire_time(nbytes) + self._latency(dst)
        self.bytes_sent += nbytes
        self.messages_sent += 1

        if self._channel:
            token = self._rdma_token
            self._rdma_token = token + 1
            self._rdma_ctx[token] = context
            self._fabric.channel_send(_ch.ChannelMsg(
                when=first_byte,
                key=self._fabric.next_channel_key(
                    self.node, self.port, dst.node, dst.port),
                kind=_ch.PLACE,
                src_node=self.node, src_port=self.port,
                dst_node=dst.node, dst_port=dst.port,
                nbytes=nbytes, payload=notify_payload,
                extra=(tx_end, token),
            ))
            return

        arrival = self._rx_stream(dst, first_byte, nbytes)

        def remote_placed(_ev: Event) -> None:
            dst.bytes_received += nbytes
            dst.messages_received += 1
            if notify_payload is not None:
                dst.inbound.append(InboundPacket(self.node, notify_payload, nbytes))
                dst._kick()

        def local_complete(_ev: Event) -> None:
            self.cq.append(
                CompletionEntry(CompletionKind.RDMA_WRITE_DONE, context, nbytes)
            )
            self._kick()

        if self._fast:
            dst._burst_at(_STREAM_RX, arrival, remote_placed)
            # Reliable-connection semantics: local completion once remotely
            # placed -- same arrival instant, so it rides the same burst.
            dst._burst_at(_STREAM_RX, arrival, local_complete)
        else:
            self._at(arrival, remote_placed)
            # Reliable-connection semantics: local completion once remotely placed.
            self._at(arrival, local_complete)
        self._record(dst, nbytes, tx_end, arrival, "rdma_write")

    def post_rdma_read(
        self,
        target: "Nic",
        nbytes: float,
        context: object = None,
    ) -> None:
        """One-sided read of ``target``'s memory; serviced by its NIC alone.

        The request packet reaches the target after
        ``rdma_read_request_latency``; the target's NIC then streams the
        data back through its TX port (contending with its other sends, but
        never touching its CPU).  A local ``RDMA_READ_DONE`` CQ entry
        appears when all data has arrived.
        """
        self._check_dst(target)
        request_arrival = self.engine.now + self.params.rdma_read_request_latency

        if self._channel:
            token = self._rdma_token
            self._rdma_token = token + 1
            self._rdma_ctx[token] = context
            self._fabric.channel_send(_ch.ChannelMsg(
                when=request_arrival,
                key=self._fabric.next_channel_key(
                    self.node, self.port, target.node, target.port),
                kind=_ch.READ_REQ,
                src_node=self.node, src_port=self.port,
                dst_node=target.node, dst_port=target.port,
                nbytes=nbytes, payload=None, extra=token,
            ))
            return

        def service_read(_ev: Event) -> None:
            tx_end = target._tx_stream(nbytes)
            target.bytes_sent += nbytes
            target.messages_sent += 1
            first_byte = tx_end - target.params.wire_time(nbytes) + target._latency(self)
            arrival = Nic._rx_stream(self, first_byte, nbytes)

            def data_arrived(_ev: Event) -> None:
                self.bytes_received += nbytes
                self.messages_received += 1
                self.cq.append(
                    CompletionEntry(CompletionKind.RDMA_READ_DONE, context, nbytes)
                )
                self._kick()

            if self._fast:
                # Data lands at the initiator, paced by its RX port.
                self._burst_at(_STREAM_RX, arrival, data_arrived)
            else:
                target._at(arrival, data_arrived)
            # The read moves data target -> initiator.
            target._record(self, nbytes, tx_end, arrival, "rdma_read")

        if self._fast:
            self._burst_at(_STREAM_CTL, request_arrival, service_read)
        else:
            self._at(request_arrival, service_read)

    # -- channel receiver halves -------------------------------------------
    def _channel_recv(self, msg: "_ch.ChannelMsg") -> None:
        """Execute the receiver half of one cross-NIC effect.

        Runs at ``msg.when`` on the engine that owns this NIC, keyed by the
        message's partition-invariant channel key.  Mirrors exactly what
        the direct-delivery verbs do to remote state -- RX-port
        reservation, arrival scheduling, CQ/inbound delivery -- but from
        the owning side.
        """
        kind = msg.kind
        nbytes = msg.nbytes
        if kind == _ch.DELIVER:
            tx_end, duplicate, reorder = typing.cast(tuple, msg.extra)
            arrival = Nic._rx_stream(self, msg.when, nbytes)
            if reorder:
                # Held in the switch, overtaken by packets posted after it.
                arrival += self._inj.plan.reorder_delay
            src_node = msg.src_node
            payload = msg.payload

            def deliver(_ev: Event) -> None:
                self.inbound.append(InboundPacket(src_node, payload, nbytes))
                self.bytes_received += nbytes
                self.messages_received += 1
                self._kick()

            if self._fast:
                self._burst_at(_STREAM_RX, arrival, deliver)
                if duplicate:
                    self._burst_at(_STREAM_RX, arrival, deliver)
            else:
                self._at(arrival, deliver)
                if duplicate:
                    self._at(arrival, deliver)
            self._record_from(msg.src_node, nbytes, tx_end, arrival, "send")
        elif kind == _ch.PLACE:
            tx_end, token = typing.cast(tuple, msg.extra)
            arrival = Nic._rx_stream(self, msg.when, nbytes)
            src_node = msg.src_node
            notify = msg.payload

            def remote_placed(_ev: Event) -> None:
                self.bytes_received += nbytes
                self.messages_received += 1
                if notify is not None:
                    self.inbound.append(InboundPacket(src_node, notify, nbytes))
                    self._kick()

            if self._fast:
                self._burst_at(_STREAM_RX, arrival, remote_placed)
            else:
                self._at(arrival, remote_placed)
            # Reliable-connection semantics: the writer completes once the
            # data is placed.  The ACK's effect time is bounded below by
            # ``msg.when + wire_time(nbytes)``, which is what lets the
            # shard coordinator fence it (see repro.sim.parallel).
            self._fabric.channel_send(_ch.ChannelMsg(
                when=arrival,
                key=self._fabric.next_channel_key(
                    self.node, self.port, msg.src_node, msg.src_port),
                kind=_ch.ACK,
                src_node=self.node, src_port=self.port,
                dst_node=msg.src_node, dst_port=msg.src_port,
                nbytes=nbytes, payload=None, extra=token,
            ))
            self._record_from(msg.src_node, nbytes, tx_end, arrival, "rdma_write")
        elif kind == _ch.ACK:
            context = self._rdma_ctx.pop(typing.cast(int, msg.extra))
            self.cq.append(
                CompletionEntry(CompletionKind.RDMA_WRITE_DONE, context, nbytes)
            )
            self._kick()
        elif kind == _ch.READ_REQ:
            tx_end = self._tx_stream(nbytes)
            self.bytes_sent += nbytes
            self.messages_sent += 1
            initiator = self._fabric.nic(msg.src_node, msg.src_port)
            first_byte = (
                tx_end - self.params.wire_time(nbytes) + self._latency(initiator)
            )
            self._fabric.channel_send(_ch.ChannelMsg(
                when=first_byte,
                key=self._fabric.next_channel_key(
                    self.node, self.port, msg.src_node, msg.src_port),
                kind=_ch.READ_DATA,
                src_node=self.node, src_port=self.port,
                dst_node=msg.src_node, dst_port=msg.src_port,
                nbytes=nbytes, payload=None, extra=(tx_end, msg.extra),
            ))
        else:  # READ_DATA
            tx_end, token = typing.cast(tuple, msg.extra)
            arrival = Nic._rx_stream(self, msg.when, nbytes)
            context = self._rdma_ctx.pop(token)

            def data_arrived(_ev: Event) -> None:
                self.bytes_received += nbytes
                self.messages_received += 1
                self.cq.append(
                    CompletionEntry(CompletionKind.RDMA_READ_DONE, context, nbytes)
                )
                self._kick()

            if self._fast:
                self._burst_at(_STREAM_RX, arrival, data_arrived)
            else:
                self._at(arrival, data_arrived)
            self._record_from(msg.src_node, nbytes, tx_end, arrival, "rdma_read")

    def _record_from(
        self, src_node: int, nbytes: float, tx_end: float, arrival: float, kind: str
    ) -> None:
        """Receiver-side ground-truth transfer record (channel mode)."""
        if self._transfer_log is None:
            return
        start = tx_end - self.params.wire_time(nbytes) - self.params.per_message_overhead
        self._transfer_log.append(
            TransferRecord(src_node, self.node, nbytes, start, arrival, kind)
        )

    def _record(
        self, dst: "Nic", nbytes: float, tx_end: float, arrival: float, kind: str
    ) -> None:
        """Log a ground-truth transfer interval (if the fabric records)."""
        if self._transfer_log is None:
            return
        start = tx_end - self.params.wire_time(nbytes) - self.params.per_message_overhead
        self._transfer_log.append(
            TransferRecord(self.node, dst.node, nbytes, start, arrival, kind)
        )

    def _check_dst(self, dst: "Nic") -> None:
        if dst.node == self.node and dst.port == self.port:
            raise ValueError(f"node {self.node} cannot target its own NIC")
        if not self._channel and dst.engine is not self.engine:
            # Channel mode routes by address (dst may be a NicProxy owned
            # by another shard); direct mode requires one shared store.
            raise ValueError("cannot communicate across engines")

    def __repr__(self) -> str:
        return f"<Nic node={self.node} port={self.port}>"
