"""Explicit cross-NIC message channels (the shard boundary).

Under the classic ``delivery="direct"`` semantics a sender reserves the
*receiver's* RX port at post time -- a read-modify-write of remote NIC
state that only works when every NIC lives in one event store.  Channel
delivery (``delivery="channel"``) removes every such remote touch: all
five cross-NIC effects become timestamped :class:`ChannelMsg` records
routed to the NIC that owns the mutated state, which performs its half of
the transaction when the message's effect time arrives.

======================  =====================================  ==========
kind                    carried by                             effect time
======================  =====================================  ==========
``DELIVER``             ``post_send``                          first byte at dst
``PLACE``               ``post_rdma_write``                    first byte at dst
``ACK``                 write placement (dst -> writer)        data arrival
``READ_REQ``            ``post_rdma_read``                     request arrival
``READ_DATA``           read service (target -> initiator)     first byte back
======================  =====================================  ==========

Determinism does not come for free once the global event counter is gone:
two shards cannot agree on "who posted first" at equal times.  Channel
messages therefore carry a *partition-invariant* total-order key packed
from their directed link id and a per-link sequence number -- a pure
function of that link's traffic, identical no matter how ranks are split
across shards.  The owning engine reserves the key band below
:data:`APP_BAND` (see :meth:`repro.sim.engine.Engine.reserve_low_keys`),
so at equal times channel effects always retire before locally allocated
events, again independent of partitioning.

The conservative-synchronization contract (see :mod:`repro.sim.parallel`)
is that a message *generated* at simulation time ``g`` has effect no
earlier than ``g + lookahead(params)``, with one exception: placement
ACKs, whose effect lags the generating event by only the data's wire
time.  Those are covered by per-obligation horizons -- the ACK's effect
time is bounded below by ``place_when + wire_time(nbytes)``, a quantity
both sides know when the write is posted (fault degradation and stalls
only push times later; the fault plan validates factors >= 1).
"""

from __future__ import annotations

import typing

from repro.netsim.params import NetworkParams

# Receiver-half discriminators (ChannelMsg.kind).
DELIVER = 0    # two-sided send payload           -> dst inbound queue
PLACE = 1      # RDMA-write placement             -> dst memory / notify
ACK = 2        # write placed                     -> writer's CQ
READ_REQ = 3   # RDMA-read request                -> target NIC service
READ_DATA = 4  # RDMA-read data return            -> initiator's CQ

#: Bits reserved for the per-link sequence number inside a channel key.
_SEQ_BITS = 34
#: First engine-allocated sequence number in channel mode: every channel
#: key (``link_id << _SEQ_BITS | link_seq``) stays strictly below it, so
#: channel effects win FIFO ties against app-band events.
APP_BAND = 1 << 62
_MAX_LINKS = APP_BAND >> _SEQ_BITS
_MAX_LINK_SEQ = 1 << _SEQ_BITS


class ChannelMsg(typing.NamedTuple):
    """One cross-NIC effect, executed on the destination NIC's shard.

    ``when`` is the effect time; ``key`` the partition-invariant engine
    tie-break; ``extra`` is kind-specific (sender-side timing the receiver
    needs for ground-truth transfer records, RDMA context tokens, fault
    verdict flags).  Everything is picklable: completion contexts (often
    closures) never travel -- they stay in the posting NIC's token table
    and only the token crosses shards.
    """

    when: float
    key: int
    kind: int
    src_node: int
    src_port: int
    dst_node: int
    dst_port: int
    nbytes: float
    payload: object
    extra: object


def link_id(
    src_node: int, src_port: int, dst_node: int, dst_port: int,
    num_nodes: int, nics_per_node: int,
) -> int:
    """Dense index of a directed link (one sequence counter each)."""
    return (
        (src_node * nics_per_node + src_port) * num_nodes + dst_node
    ) * nics_per_node + dst_port


def pack_key(link: int, seq: int) -> int:
    """Engine tie-break key of the ``seq``-th message on link ``link``."""
    if link >= _MAX_LINKS:  # pragma: no cover - 2^28 directed links
        raise ValueError("fabric too large for the channel key space")
    if seq >= _MAX_LINK_SEQ:  # pragma: no cover - 2^34 msgs on one link
        raise ValueError("per-link sequence space exhausted")
    return (link << _SEQ_BITS) | seq


def lookahead(params: NetworkParams) -> float:
    """Conservative lower bound on (effect - generation) for channel msgs.

    ``DELIVER``/``PLACE`` take effect at the first byte's arrival, at
    least one per-message overhead plus one (jitter-reduced) wire latency
    after the post; ``READ_REQ`` after the fixed request latency;
    ``READ_DATA`` is generated at request service and obeys the same
    first-byte bound.  Placement ACKs are excluded -- they are fenced by
    per-obligation horizons instead (see module docstring).  Fault plans
    only ever push times later (stalls, stragglers, degradation >= 1x).
    """
    min_latency = params.latency * (1.0 - params.latency_jitter_frac)
    return min(
        params.per_message_overhead + min_latency,
        params.rdma_read_request_latency,
    )


class LocalRouter:
    """Single-store router: every destination NIC lives in this fabric."""

    def __init__(self, fabric) -> None:
        self.fabric = fabric

    def send(self, msg: ChannelMsg) -> None:
        self.fabric.channel_inject(msg)


class ShardRouter:
    """Boundary router of one shard: local injection or outbox buffering.

    Messages for NICs this shard owns are injected straight into its
    engine; messages crossing the cut are buffered and handed to the
    coordinator at the next synchronization point (the ``ShardLink`` of
    the sharded engine -- see :mod:`repro.sim.parallel`).
    """

    def __init__(self, fabric, shard_of: "list[int]", shard_id: int) -> None:
        self.fabric = fabric
        self.shard_of = shard_of
        self.shard_id = shard_id
        self.outbox: list[ChannelMsg] = []
        #: Cross-shard messages routed out over the lifetime (diagnostics).
        self.sent_across = 0

    def send(self, msg: ChannelMsg) -> None:
        if self.shard_of[msg.dst_node] == self.shard_id:
            self.fabric.channel_inject(msg)
        else:
            self.outbox.append(msg)

    def drain(self) -> list[ChannelMsg]:
        """Take the buffered cross-shard messages (coordinator side)."""
        out = self.outbox
        if out:
            self.sent_across += len(out)
            self.outbox = []
        return out
