"""The switched fabric: a full-bisection crossbar of NICs.

The paper's testbed is a switched InfiniBand network; with one process per
node, contention exists only at NIC ports (modeled in
:class:`~repro.netsim.nic.Nic`), never inside the switch.  The fabric is
therefore just the collection of NICs plus addressing, with optional
multi-rail (``nics_per_node > 1``) for the fragment-striping experiments.
"""

from __future__ import annotations

from repro.faults.inject import FaultInjector
from repro.netsim.nic import Nic
from repro.netsim.params import NetworkParams
from repro.sim import Engine


class Fabric:
    """All NICs of a simulated cluster."""

    def __init__(
        self,
        engine: Engine,
        params: NetworkParams,
        num_nodes: int,
        nics_per_node: int = 1,
        seed: int = 0,
        record_transfers: bool = False,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if nics_per_node < 1:
            raise ValueError("need at least one NIC per node")
        self.engine = engine
        self.params = params
        self.num_nodes = num_nodes
        self.nics_per_node = nics_per_node
        #: Ground-truth physical transfer intervals (only populated when
        #: ``record_transfers`` -- used for bound validation).
        self.transfer_log: "list | None" = [] if record_transfers else None
        #: Live fault state for this run (None = healthy fabric).
        self.injector = (
            FaultInjector(params.faults, num_nodes)
            if params.faults is not None
            else None
        )
        # Jitter streams are derived per directed link inside each NIC from
        # (seed, src, src_port, dst, dst_port), so jittered runs replay
        # identically for a fixed seed regardless of traffic interleaving
        # or multiprocess sweep scheduling.
        self._nics = [
            [
                Nic(engine, params, node, port, seed=seed,
                    injector=self.injector,
                    transfer_log=self.transfer_log)
                for port in range(nics_per_node)
            ]
            for node in range(num_nodes)
        ]

    def nic(self, node: int, port: int = 0) -> Nic:
        """The NIC at ``(node, port)``."""
        return self._nics[node][port]

    def nics_of(self, node: int) -> list[Nic]:
        """All rails of one node."""
        return list(self._nics[node])

    def total_bytes_on_wire(self) -> float:
        """Σ bytes sent by every NIC (diagnostics)."""
        return sum(nic.bytes_sent for rails in self._nics for nic in rails)

    def __repr__(self) -> str:
        return (
            f"<Fabric {self.num_nodes} nodes x {self.nics_per_node} NICs, "
            f"{self.params.bandwidth / 1e6:.0f} MB/s>"
        )
