"""The switched fabric: a full-bisection crossbar of NICs.

The paper's testbed is a switched InfiniBand network; with one process per
node, contention exists only at NIC ports (modeled in
:class:`~repro.netsim.nic.Nic`), never inside the switch.  The fabric is
therefore just the collection of NICs plus addressing, with optional
multi-rail (``nics_per_node > 1``) for the fragment-striping experiments.

With ``params.delivery == "channel"`` the fabric additionally owns the
channel machinery of :mod:`repro.netsim.channel`: per-directed-link
sequence counters (the partition-invariant event ordering), a router
(local injection, or a shard boundary), and -- when ``owned_nodes`` is a
strict subset -- lightweight :class:`NicProxy` stand-ins for the NICs
other shards own, so address lookups keep working while remote state
stays untouchable by construction.
"""

from __future__ import annotations

import typing

from repro.faults.inject import FaultInjector
from repro.netsim import channel as _ch
from repro.netsim.nic import Nic
from repro.netsim.params import NetworkParams
from repro.sim import Engine


class NicProxy:
    """Address of a NIC another shard owns.

    Carries exactly what a sender needs -- the coordinates -- and nothing
    a sender may touch: any attempt to reach port clocks, queues, or
    counters of a remote NIC fails loudly instead of corrupting state.
    """

    __slots__ = ("node", "port")

    def __init__(self, node: int, port: int) -> None:
        self.node = node
        self.port = port

    def __repr__(self) -> str:
        return f"<NicProxy node={self.node} port={self.port}>"


class Fabric:
    """All NICs of a simulated cluster (or of one shard of it)."""

    def __init__(
        self,
        engine: Engine,
        params: NetworkParams,
        num_nodes: int,
        nics_per_node: int = 1,
        seed: int = 0,
        record_transfers: bool = False,
        owned_nodes: "typing.Iterable[int] | None" = None,
        shard_of: "list[int] | None" = None,
        shard_id: int | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if nics_per_node < 1:
            raise ValueError("need at least one NIC per node")
        self.engine = engine
        self.params = params
        self.num_nodes = num_nodes
        self.nics_per_node = nics_per_node
        #: Channel-delivery semantics (see repro.netsim.channel).
        self.channel = params.delivery == "channel"
        if owned_nodes is None:
            self.owned_nodes = list(range(num_nodes))
        else:
            if not self.channel:
                raise ValueError(
                    "owning a subset of nodes requires delivery='channel'"
                )
            self.owned_nodes = sorted(owned_nodes)
        owned = set(self.owned_nodes)
        #: Ground-truth physical transfer intervals (only populated when
        #: ``record_transfers`` -- used for bound validation).
        self.transfer_log: "list | None" = [] if record_transfers else None
        #: Live fault state for this run (None = healthy fabric).
        self.injector = (
            FaultInjector(params.faults, num_nodes)
            if params.faults is not None
            else None
        )
        #: Per-directed-link message counters (channel mode): the ordering
        #: authority that replaces the engine's global counter across the
        #: cut.  Each link's counter is touched only by the rank that owns
        #: its source NIC (sends, read requests) or its source-side
        #: receiver half (ACKs, read data), so the sequence on a link is a
        #: pure function of that link's traffic -- identical under any
        #: rank partition.
        self._link_seq: dict[int, int] = {}
        #: Channel router; replaced by a ShardRouter in sharded workers.
        self.router: "typing.Any | None" = None
        if self.channel:
            # Engine-allocated (app-band) keys must sort after every
            # channel key at equal times, under any partition.
            engine.reserve_low_keys(_ch.APP_BAND)
            if shard_of is not None:
                if shard_id is None:
                    raise ValueError("shard_of requires shard_id")
                self.router = _ch.ShardRouter(self, shard_of, shard_id)
            else:
                self.router = _ch.LocalRouter(self)
        elif shard_of is not None:
            raise ValueError("sharding requires delivery='channel'")
        # Jitter streams are derived per directed link inside each NIC from
        # (seed, src, src_port, dst, dst_port), so jittered runs replay
        # identically for a fixed seed regardless of traffic interleaving
        # or multiprocess sweep scheduling.
        self._nics: "list[list[Nic | NicProxy]]" = [
            [
                Nic(engine, params, node, port, seed=seed,
                    injector=self.injector,
                    transfer_log=self.transfer_log,
                    fabric=self)
                if node in owned
                else NicProxy(node, port)
                for port in range(nics_per_node)
            ]
            for node in range(num_nodes)
        ]

    def nic(self, node: int, port: int = 0) -> Nic:
        """The NIC at ``(node, port)`` (a :class:`NicProxy` if unowned)."""
        return self._nics[node][port]  # type: ignore[return-value]

    def nics_of(self, node: int) -> list[Nic]:
        """All rails of one node."""
        return list(self._nics[node])  # type: ignore[arg-type]

    # -- channel delivery --------------------------------------------------
    def next_channel_key(
        self, src_node: int, src_port: int, dst_node: int, dst_port: int
    ) -> int:
        """Allocate the next total-order key on one directed link."""
        link = _ch.link_id(
            src_node, src_port, dst_node, dst_port,
            self.num_nodes, self.nics_per_node,
        )
        seq = self._link_seq.get(link, 0)
        self._link_seq[link] = seq + 1
        return _ch.pack_key(link, seq)

    def channel_send(self, msg: "_ch.ChannelMsg") -> None:
        """Route one cross-NIC effect (local injection or shard outbox)."""
        self.router.send(msg)

    def channel_inject(self, msg: "_ch.ChannelMsg") -> None:
        """Schedule a channel message's receiver half on this engine."""
        nic = self._nics[msg.dst_node][msg.dst_port]
        ev = self.engine.post_keyed(msg.when, msg.key)
        ev.callbacks.append(  # type: ignore[union-attr]
            lambda _ev, nic=nic, msg=msg: nic._channel_recv(msg)
        )

    def total_bytes_on_wire(self) -> float:
        """Σ bytes sent by every owned NIC (diagnostics)."""
        return sum(
            nic.bytes_sent
            for rails in self._nics
            for nic in rails
            if isinstance(nic, Nic)
        )

    def __repr__(self) -> str:
        return (
            f"<Fabric {self.num_nodes} nodes x {self.nics_per_node} NICs, "
            f"{self.params.bandwidth / 1e6:.0f} MB/s>"
        )
