"""Length-prefixed TCP framing for the sharded engine's wire protocol.

The multi-host shard backend (``shard_backend="socket"``) moves the same
command/reply tuples the fork backend sends over multiprocessing pipes --
including the columnar :class:`repro.netsim.wire.Frame` batches -- across
TCP instead.  A pipe delivers whole messages; a stream socket delivers
*bytes*, in whatever chunks the kernel feels like.  This module owns
that gap:

* :func:`encode_message` / :class:`FrameDecoder`: every message is one
  ``!I`` length prefix plus a pickled payload.  The decoder is a pure
  incremental parser -- feed it byte chunks split at *any* boundary
  (mid-prefix, mid-payload) and it yields exactly the messages a
  whole-buffer decode would, bit-identically (hypothesis-tested in
  ``tests/test_netsim_transport.py``; the sharded engine's cross-host
  bit-identity guarantee rests on it).
* :class:`FrameStream`: a socket wrapper with the decoder behind it --
  blocking receive with deadline, non-blocking drain (for the
  null-message protocol's readiness loop), thread-safe send (the worker
  heartbeat thread shares the stream with the command loop), and
  traffic counters for ``sync_stats``.
* :func:`connect_with_retry`: exponential backoff with deterministic
  seeded jitter -- a worker that is still booting is retried, a dead
  address fails with the attempt history in the message.
* :func:`client_handshake` / :func:`server_handshake`: a versioned hello
  exchange.  Mismatched protocol versions are *rejected* (the worker
  answers with its own version and closes) instead of failing later with
  an unpickling error mid-run.

Trust model: payloads are pickles, so the transport is for hosts you
already trust to run your code -- the same boundary as ``mpirun``.  The
worker bootstrap binds to ``127.0.0.1`` unless told otherwise.

Failure taxonomy: :class:`TransportTimeout` (no frame within the
deadline -- the heartbeat watchdog's signal), :class:`ConnectionLost`
(EOF or a socket error -- the peer died), :class:`HandshakeError`
(version or protocol mismatch at session start).  All are
:class:`TransportError`, which the coordinator maps onto
:class:`repro.sim.parallel.ShardHostLost`.
"""

from __future__ import annotations

import dataclasses
import pickle
import random
import socket
import struct
import threading
import time
import typing

__all__ = [
    "PROTOCOL_VERSION",
    "TransportError",
    "TransportTimeout",
    "ConnectionLost",
    "HandshakeError",
    "TransportOptions",
    "FrameDecoder",
    "FrameStream",
    "encode_message",
    "enable_keepalive",
    "connect_with_retry",
    "client_handshake",
    "server_handshake",
    "parse_hostport",
]

#: Bumped on any incompatible change to the command tuples or framing.
#: The handshake rejects mismatches before any simulation state moves.
PROTOCOL_VERSION = 1

_HEADER = struct.Struct("!I")
#: Upper bound on one message's payload; a corrupt or hostile length
#: prefix fails fast instead of allocating gigabytes.
MAX_MESSAGE_BYTES = 1 << 30
_RECV_CHUNK = 1 << 16


class TransportError(RuntimeError):
    """Base failure talking to a remote shard worker."""


class TransportTimeout(TransportError):
    """No complete frame arrived within the allowed time."""


class ConnectionLost(TransportError):
    """The peer closed the connection or the socket errored."""


class HandshakeError(TransportError):
    """Version/protocol mismatch during session establishment."""


@dataclasses.dataclass(frozen=True)
class TransportOptions:
    """Resilience knobs for the socket shard backend.

    ``connect_*`` governs the initial dial (exponential backoff with
    seeded jitter between attempts).  ``heartbeat_interval`` is how often
    a worker emits liveness frames while serving a session (negotiated in
    the handshake, so the coordinator's value wins); ``host_timeout`` is
    the coordinator-side deadline -- a shard that produces *no* frame
    (heartbeat or reply) for that long is declared lost and the run is
    terminated with a diagnostic snapshot instead of hanging the fence.
    """

    connect_timeout: float = 5.0
    connect_attempts: int = 8
    connect_base_delay: float = 0.05
    connect_backoff: float = 2.0
    #: Fraction of each delay added as seeded-random jitter (decorrelates
    #: a thundering herd of shards re-dialing one recovering worker).
    connect_jitter: float = 0.25
    handshake_timeout: float = 10.0
    heartbeat_interval: float = 0.5
    host_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.connect_attempts < 1:
            raise ValueError("connect_attempts must be >= 1")
        for name in ("connect_timeout", "connect_base_delay",
                     "handshake_timeout", "heartbeat_interval",
                     "host_timeout"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")
        if self.connect_backoff < 1.0:
            raise ValueError("connect_backoff must be >= 1.0")
        if not 0.0 <= self.connect_jitter <= 1.0:
            raise ValueError("connect_jitter must be in [0, 1]")
        if self.host_timeout < self.heartbeat_interval:
            raise ValueError(
                "host_timeout must be >= heartbeat_interval (a deadline "
                "shorter than the liveness period trips on healthy hosts)"
            )


def parse_hostport(spec: str, default_host: str = "127.0.0.1"
                   ) -> tuple[str, int]:
    """``"host:port"`` (or bare ``"port"``) -> ``(host, port)``."""
    text = spec.strip()
    host, sep, port_s = text.rpartition(":")
    if not sep:
        host, port_s = default_host, text
    host = host or default_host
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"bad host:port spec {spec!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in {spec!r}")
    return host, port


def encode_message(obj: object) -> bytes:
    """One wire message: ``!I`` length prefix + pickled payload."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_MESSAGE_BYTES:  # pragma: no cover - sanity cap
        raise TransportError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte frame cap"
        )
    return _HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental length-prefixed decoder, safe under arbitrary splits.

    Pure state machine over bytes: :meth:`feed` chunks in any sizes,
    :meth:`pop` complete messages out.  Bytes between messages persist
    across feeds, so a prefix or payload split across reads is simply
    completed by the next chunk -- decoded messages are bit-identical to
    a whole-buffer decode no matter the chunking.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._need: "int | None" = None  # payload length once prefix parsed

    def feed(self, data: bytes) -> None:
        self._buf += data

    def pop(self) -> "tuple[bool, object]":
        """``(True, message)`` when one is complete, else ``(False, None)``."""
        buf = self._buf
        if self._need is None:
            if len(buf) < _HEADER.size:
                return False, None
            (need,) = _HEADER.unpack_from(buf)
            if need > MAX_MESSAGE_BYTES:
                raise TransportError(
                    f"frame header announces {need} bytes "
                    f"(cap {MAX_MESSAGE_BYTES}): corrupt stream?"
                )
            self._need = need
            del buf[:_HEADER.size]
        if len(buf) < self._need:
            return False, None
        payload = bytes(buf[:self._need])
        del buf[:self._need]
        self._need = None
        return True, pickle.loads(payload)

    def pending_bytes(self) -> int:
        return len(self._buf)


class FrameStream:
    """One message-framed socket: blocking/draining receive, locked send.

    ``injector`` (a :class:`repro.faults.TransportInjector`) hooks every
    send under the send lock, so deterministic transport faults -- drop,
    stall, slow host -- apply to command replies and heartbeats alike.
    Counters (``frames_in/out``, ``bytes_in/out``, ``last_recv``) feed
    the coordinator's ``sync_stats`` and the host-loss watchdog.
    """

    def __init__(self, sock: socket.socket, injector=None) -> None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - e.g. AF_UNIX socketpair
            pass
        self.sock = sock
        self.injector = injector
        self._decoder = FrameDecoder()
        self._send_lock = threading.Lock()
        self.frames_out = 0
        self.frames_in = 0
        self.bytes_out = 0
        self.bytes_in = 0
        self.last_recv = time.monotonic()
        self._closed = False

    def fileno(self) -> int:
        return self.sock.fileno()

    # -- sending -----------------------------------------------------------
    def send(self, obj: object) -> None:
        data = encode_message(obj)
        with self._send_lock:
            if self.injector is not None:
                self.injector.before_send(self)
            try:
                # recv()/try_recv() leave the socket's timeout finite or
                # zero; sendall() on such a socket raises as soon as the
                # frame outgrows the free kernel buffer -- possibly after
                # a partial write that desyncs the framing -- and a
                # healthy peer would be misdeclared lost.  Writes always
                # run blocking; the receive paths re-set their own
                # timeout immediately before every recv() call.
                self.sock.settimeout(None)
                self.sock.sendall(data)
            except OSError as exc:
                raise ConnectionLost(f"send failed: {exc}") from exc
            self.frames_out += 1
            self.bytes_out += len(data)

    # -- receiving ---------------------------------------------------------
    def recv(self, timeout: "float | None" = None) -> object:
        """Block for one message; :class:`TransportTimeout` on deadline."""
        ok, msg = self._decoder.pop()
        if ok:
            self.frames_in += 1
            return msg
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    raise TransportTimeout(
                        f"no frame within {timeout:.3f}s")
                self.sock.settimeout(remaining)
            else:
                self.sock.settimeout(None)
            try:
                data = self.sock.recv(_RECV_CHUNK)
            except socket.timeout:
                raise TransportTimeout(
                    f"no frame within {timeout:.3f}s") from None
            except OSError as exc:
                raise ConnectionLost(f"recv failed: {exc}") from exc
            if not data:
                raise ConnectionLost("peer closed the connection")
            self.bytes_in += len(data)
            self.last_recv = time.monotonic()
            self._decoder.feed(data)
            ok, msg = self._decoder.pop()
            if ok:
                self.frames_in += 1
                return msg

    def try_recv(self) -> "tuple[bool, object]":
        """Drain available bytes without blocking.

        Returns ``(True, message)`` if a complete message is now
        buffered, ``(False, None)`` otherwise.  Raises
        :class:`ConnectionLost` on EOF.  Used by the null-message
        protocol after a readiness wake-up: a ready socket may hold only
        a heartbeat or half a reply.
        """
        ok, msg = self._decoder.pop()
        if ok:
            self.frames_in += 1
            return True, msg
        while True:
            self.sock.settimeout(0.0)
            try:
                data = self.sock.recv(_RECV_CHUNK)
            except (BlockingIOError, socket.timeout):
                return False, None
            except OSError as exc:
                raise ConnectionLost(f"recv failed: {exc}") from exc
            if not data:
                raise ConnectionLost("peer closed the connection")
            self.bytes_in += len(data)
            self.last_recv = time.monotonic()
            self._decoder.feed(data)
            ok, msg = self._decoder.pop()
            if ok:
                self.frames_in += 1
                return True, msg

    # -- teardown ----------------------------------------------------------
    def abort(self) -> None:
        """Hard close (used by fault injection to simulate a dying host)."""
        self._closed = True
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass


def connect_with_retry(
    host: str,
    port: int,
    options: "TransportOptions | None" = None,
    rng: "random.Random | None" = None,
) -> tuple[socket.socket, int]:
    """Dial a worker with exponential backoff + jitter.

    Returns ``(socket, attempts_used)``.  ``rng`` seeds the jitter (the
    coordinator derives it from the run seed and shard id, so retry
    schedules are reproducible); ``None`` uses an unseeded stream.
    """
    options = options or TransportOptions()
    rng = rng or random.Random()
    delay = options.connect_base_delay
    last: "OSError | None" = None
    for attempt in range(1, options.connect_attempts + 1):
        try:
            sock = socket.create_connection(
                (host, port), timeout=options.connect_timeout)
            sock.settimeout(None)
            return sock, attempt
        except OSError as exc:
            last = exc
            if attempt == options.connect_attempts:
                break
            time.sleep(delay * (1.0 + options.connect_jitter * rng.random()))
            delay *= options.connect_backoff
    raise TransportError(
        f"connect to {host}:{port} failed after "
        f"{options.connect_attempts} attempt(s): {last}"
    )


def enable_keepalive(
    sock: socket.socket,
    idle: float = 60.0,
    interval: float = 10.0,
    count: int = 6,
) -> bool:
    """Arm TCP keepalive probes so a half-open peer is eventually reaped.

    The worker's command loop blocks in ``recv()`` with no deadline (a
    slow coordinator between fence rounds is healthy, so an idle timeout
    would misfire), which means a coordinator host that vanishes without
    a TCP reset -- kill -9 plus a network partition -- would otherwise
    pin the session thread, its rank stack, and its heartbeat thread for
    the life of the worker process.  Keepalive distinguishes *dead* from
    *slow*: after ``idle`` seconds of silence the kernel probes every
    ``interval`` seconds, and ``count`` unanswered probes surface as an
    ``OSError`` on the blocked ``recv``.  The per-probe knobs are not
    portable (Linux/macOS spell them differently; some platforms lack
    them), so each is set only where available; returns whether
    ``SO_KEEPALIVE`` itself was enabled.
    """
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    except OSError:  # pragma: no cover - e.g. AF_UNIX socketpair
        return False
    for name, value in (
        ("TCP_KEEPIDLE", max(1, int(idle))),
        ("TCP_KEEPINTVL", max(1, int(interval))),
        ("TCP_KEEPCNT", max(1, int(count))),
    ):
        opt = getattr(socket, name, None)
        if opt is None:  # pragma: no cover - platform-dependent
            continue
        try:
            sock.setsockopt(socket.IPPROTO_TCP, opt, value)
        except OSError:  # pragma: no cover - platform-dependent
            pass
    return True


def client_handshake(
    stream: FrameStream,
    meta: "dict[str, object]",
    timeout: float,
    version: int = PROTOCOL_VERSION,
) -> "dict[str, object]":
    """Coordinator side: hello/welcome exchange; returns the worker meta.

    ``meta`` carries the session parameters the worker adopts (rank
    counts, negotiated heartbeat interval, labels).  A worker speaking a
    different protocol version answers ``reject`` with its own version,
    which surfaces here as :class:`HandshakeError` naming both sides.
    """
    stream.send(("hello", version, meta))
    try:
        answer = stream.recv(timeout=timeout)
    except TransportTimeout as exc:
        raise HandshakeError(f"no handshake answer: {exc}") from exc
    if not isinstance(answer, tuple) or not answer:
        raise HandshakeError(f"malformed handshake answer: {answer!r}")
    if answer[0] == "reject":
        raise HandshakeError(
            f"worker rejected the session: speaks protocol "
            f"{answer[1]!r}, we speak {version} ({answer[2]})"
        )
    if answer[0] != "welcome" or len(answer) < 3:
        raise HandshakeError(f"malformed handshake answer: {answer!r}")
    return typing.cast("dict[str, object]", answer[2])


def server_handshake(
    stream: FrameStream,
    meta: "dict[str, object]",
    timeout: float,
    version: int = PROTOCOL_VERSION,
) -> "dict[str, object]":
    """Worker side: validate the hello, answer welcome (or reject).

    Returns the coordinator's meta dict.  A version mismatch sends
    ``("reject", our_version, reason)`` before raising, so the
    coordinator gets an explanation instead of a dropped connection.
    """
    try:
        hello = stream.recv(timeout=timeout)
    except TransportTimeout as exc:
        raise HandshakeError(f"no hello within {timeout}s: {exc}") from exc
    if (not isinstance(hello, tuple) or len(hello) < 3
            or hello[0] != "hello"):
        stream.send(("reject", version, "malformed hello"))
        raise HandshakeError(f"malformed hello: {hello!r}")
    peer_version = hello[1]
    if peer_version != version:
        reason = (f"protocol version mismatch: coordinator speaks "
                  f"{peer_version!r}, worker speaks {version}")
        stream.send(("reject", version, reason))
        raise HandshakeError(reason)
    stream.send(("welcome", version, meta))
    return typing.cast("dict[str, object]", hello[2])
