"""Cost-model parameters for the simulated interconnect and host.

Defaults approximate the paper's platform: dual 2.4 GHz Xeon nodes on a
switched 8 Gbit/s InfiniBand fabric (Mellanox MT23108 on PCI-X).  The
absolute values matter less than their ratios -- see DESIGN.md Sec. 6 --
but they are chosen so that microbenchmark transfer times land in the
ranges the paper plots (tens of microseconds for 10 KB, ~1.5 ms for 1 MB).
"""

from __future__ import annotations

import dataclasses

from repro.faults.plan import FaultPlan


@dataclasses.dataclass(frozen=True)
class NetworkParams:
    """Interconnect + host-side cost model.

    All times in seconds, sizes in bytes, rates in bytes/second.
    """

    #: One-way wire/switch latency per message (small-message latency).
    latency: float = 6.0e-6
    #: Sustained NIC-to-NIC bandwidth (PCI-X-limited, ~700 MB/s).
    bandwidth: float = 700.0e6
    #: Per-message NIC processing overhead on the TX port (descriptor
    #: fetch, WQE processing -- the message-rate limit).  This is what
    #: makes packing many small strided segments worthwhile.
    per_message_overhead: float = 0.7e-6
    #: Extra one-way latency for an RDMA Read request (the read round trip
    #: starts with a request packet serviced by the target NIC).
    rdma_read_request_latency: float = 3.0e-6
    #: Size of protocol control packets (RTS/CTS/ACK/FIN) on the wire.
    control_packet_size: float = 64.0
    #: Host memcpy bandwidth (eager bounce-buffer copies).
    host_copy_bandwidth: float = 2.0e9
    #: Fixed host memcpy cost (cache warmup, call overhead).
    host_copy_latency: float = 0.3e-6
    #: CPU cost to post one work request (descriptor build + doorbell).
    post_cost: float = 0.4e-6
    #: CPU cost of one completion-queue / inbound-queue poll.
    poll_cost: float = 0.15e-6
    #: Fixed cost to pin (register) a memory region.
    pin_base_cost: float = 25.0e-6
    #: Per-byte cost to pin a memory region (page-table walks).
    pin_byte_cost: float = 2.5e-10  # 0.25 us per MB... ~256 us for 1 GiB
    #: Relative uniform jitter on per-message latency (0 = deterministic
    #: wire; 0.2 = +/-20%).  Drawn from the fabric's seeded RNG, so runs
    #: remain reproducible.  Used to check that the bounding algorithm's
    #: invariants are not artifacts of a perfectly regular network.
    latency_jitter_frac: float = 0.0
    #: Network scheduling path: ``"fast"`` coalesces contiguous runs of
    #: same-stream completions into burst macro-events (bit-identical
    #: timestamps, fewer scheduler operations -- see docs/performance.md);
    #: ``"packet"`` schedules every completion individually.
    network_path: str = "fast"
    #: Cross-NIC delivery semantics: ``"direct"`` lets a sender reserve the
    #: receiver's RX port at post time (the classic sequential model);
    #: ``"channel"`` routes every cross-NIC effect through an explicit
    #: timestamped message so a fabric can be split across shard worker
    #: processes (see :mod:`repro.netsim.channel` and
    #: :mod:`repro.sim.parallel`).  Channel runs are deterministic in
    #: themselves but are *not* bit-identical to direct runs; sharded runs
    #: are bit-identical to single-process channel runs.
    delivery: str = "direct"
    #: Fault-injection schedule (see :mod:`repro.faults`).  ``None`` (the
    #: default) keeps every code path bit-identical to a fault-free build;
    #: a :class:`~repro.faults.plan.FaultPlan` arms drop/dup/reorder,
    #: degradation windows, NIC stalls, stragglers, and instrumentation
    #: loss, all deterministically seeded.
    faults: FaultPlan | None = None

    def wire_time(self, nbytes: float) -> float:
        """Serialization time of ``nbytes`` on one NIC port."""
        return nbytes / self.bandwidth

    def transfer_time(self, nbytes: float) -> float:
        """End-to-end time of a single message: latency + serialization."""
        return self.latency + self.wire_time(nbytes)

    def copy_time(self, nbytes: float) -> float:
        """Host memcpy cost for ``nbytes``."""
        return self.host_copy_latency + nbytes / self.host_copy_bandwidth

    def pin_time(self, nbytes: float) -> float:
        """Cost of registering ``nbytes`` of memory with the NIC."""
        return self.pin_base_cost + nbytes * self.pin_byte_cost

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if field.name in ("network_path", "delivery", "faults"):
                continue
            value = getattr(self, field.name)
            if value < 0:
                raise ValueError(f"{field.name} must be non-negative, got {value}")
        if self.network_path not in ("fast", "packet"):
            raise ValueError(
                f"network_path must be 'fast' or 'packet', got {self.network_path!r}"
            )
        if self.delivery not in ("direct", "channel"):
            raise ValueError(
                f"delivery must be 'direct' or 'channel', got {self.delivery!r}"
            )
        if self.bandwidth <= 0 or self.host_copy_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency_jitter_frac >= 1.0:
            raise ValueError("latency jitter must stay below 100%")
