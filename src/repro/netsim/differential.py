"""Differential harness: macro-event fast path vs per-packet simulation.

The network fast path (:mod:`repro.netsim.nic` burst coalescing plus the
engine's macro-event retirement) is only admissible because it is
*observationally identical* to per-packet simulation: every callback runs
at the same simulated time, in the same order, so every report, telemetry
window, and deterministic metric matches bit for bit.  This module is the
referee: it runs one workload under both ``network_path`` settings and
compares everything the instrumentation layer can observe.

Used by ``python -m repro.tools.perfmain --compare`` (user-facing
equality report) and by ``tests/test_network_fastpath_differential.py``
(the CI gate across protocols and NAS kernels).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.netsim.params import NetworkParams

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.launcher import RunResult

#: Metric families legitimately allowed to differ between the two paths:
#: host-clock measurements (never deterministic) and descriptions of the
#: pending-store *shape* or the macro path itself (a burst keeps one store
#: entry for many sub-events by design, and per-packet mode opens no
#: bursts at all).  Everything else must match exactly.
EXCLUDED_METRIC_FAMILIES = frozenset({
    "repro_engine_sim_seconds_per_host_second",
    "repro_equeue_flush_seconds",
    "repro_peruse_dispatch_seconds",
    "repro_engine_heap_size",
    "repro_engine_heap_hiwater",
    "repro_engine_calendar_active",
    "repro_engine_bursts_opened",
    "repro_engine_burst_reinserts",
})


@dataclasses.dataclass
class Delta:
    """One compared measure: its name and both sides' values."""

    measure: str
    equal: bool
    fast: object
    packet: object


def comparable_metrics(snapshot: dict) -> dict:
    """The deterministic, path-independent subset of a metrics snapshot."""
    metrics = typing.cast(dict, snapshot.get("metrics", {}))
    return {
        name: family
        for name, family in metrics.items()
        if name not in EXCLUDED_METRIC_FAMILIES
    }


def run_both(
    app: typing.Callable[..., typing.Generator],
    nprocs: int,
    config: object = None,
    params: "NetworkParams | None" = None,
    app_args: tuple = (),
    seed: int = 0,
    label: str = "",
    telemetry: bool = True,
    metrics: bool = True,
) -> "tuple[RunResult, RunResult, dict | None, dict | None]":
    """Run ``app`` under both network paths; returns results + snapshots.

    Returns ``(fast_result, packet_result, fast_metrics, packet_metrics)``
    where the metrics snapshots are ``None`` when ``metrics`` is off.
    Everything else about the two runs -- config, seed, transfer table --
    is identical by construction.
    """
    from repro.runtime.launcher import run_app

    base = params if params is not None else NetworkParams()
    results = []
    snapshots: "list[dict | None]" = []
    for path in ("fast", "packet"):
        registry = None
        if metrics:
            from repro.metrics import MetricsRegistry

            registry = MetricsRegistry()
        tele = None
        if telemetry:
            from repro.telemetry.collect import TelemetryConfig

            tele = TelemetryConfig()
        results.append(
            run_app(
                app, nprocs,
                config=config,  # type: ignore[arg-type]
                params=dataclasses.replace(base, network_path=path),
                app_args=app_args, seed=seed, label=label,
                telemetry=tele, metrics=registry,
            )
        )
        snapshots.append(registry.snapshot() if registry is not None else None)
    return results[0], results[1], snapshots[0], snapshots[1]


def compare_runs(
    fast: "RunResult",
    packet: "RunResult",
    fast_metrics: "dict | None" = None,
    packet_metrics: "dict | None" = None,
) -> list[Delta]:
    """Compare everything observable; one :class:`Delta` per measure.

    Floats are compared with ``==`` (bit identity), never with a
    tolerance: the fast path owes exact equality, not approximation.
    """
    deltas: list[Delta] = []

    def add(measure: str, a: object, b: object) -> None:
        deltas.append(Delta(measure, a == b, a, b))

    add("elapsed", fast.elapsed, packet.elapsed)
    add("rank_finish_times", fast.rank_finish_times, packet.rank_finish_times)
    add("compute_logs", fast.compute_logs, packet.compute_logs)
    for rank, (rf, rp) in enumerate(zip(fast.reports, packet.reports)):
        if rf is None or rp is None:
            add(f"rank{rank}.report", rf, rp)
            continue
        df, dp = rf.to_dict(), rp.to_dict()
        for key in ("wall_time", "event_count", "total", "sections",
                    "call_stats"):
            add(f"rank{rank}.report.{key}", df[key], dp[key])
    if fast.telemetry is not None and packet.telemetry is not None:
        for tf, tp in zip(fast.telemetry.per_rank, packet.telemetry.per_rank):
            add(f"rank{tf.rank}.telemetry.windows",
                tf.series.to_dict(), tp.series.to_dict())
            add(f"rank{tf.rank}.telemetry.events", tf.events, tp.events)
    elif (fast.telemetry is None) != (packet.telemetry is None):
        add("telemetry", fast.telemetry, packet.telemetry)
    if fast_metrics is not None and packet_metrics is not None:
        mf = comparable_metrics(fast_metrics)
        mp = comparable_metrics(packet_metrics)
        for name in sorted(set(mf) | set(mp)):
            add(f"metrics.{name}", mf.get(name), mp.get(name))
    return deltas


def run_sharded_pair(
    app: typing.Callable[..., typing.Generator],
    nprocs: int,
    shards: int,
    config: object = None,
    params: "NetworkParams | None" = None,
    app_args: tuple = (),
    seed: int = 0,
    label: str = "",
    sync: str = "window",
    backend: str = "process",
    strategy: str = "contiguous",
    record_transfers: bool = False,
    batch: bool = True,
    fence_impl: str = "incremental",
    hosts: "typing.Sequence | None" = None,
    transport: "typing.Any | None" = None,
) -> "tuple[RunResult, RunResult]":
    """Run once single-process and once sharded; both use channel delivery.

    The single-process run is the ground truth the sharded engine owes
    bit-identical results to (``delivery="channel"`` on both sides -- that
    is the semantics the sharding refactor is defined against).  Returns
    ``(single, sharded)``.  ``backend="socket"`` additionally takes
    ``hosts`` (running ``repro.sim.remote`` worker addresses) and
    optional ``transport`` options, so the referee covers the multi-host
    path with the same bit-identity bar as the local backends.
    """
    from repro.runtime.launcher import run_app

    base = params if params is not None else NetworkParams()
    chan = dataclasses.replace(base, delivery="channel")
    single = run_app(
        app, nprocs, config=config, params=chan,  # type: ignore[arg-type]
        app_args=app_args, seed=seed, label=label,
        record_transfers=record_transfers,
    )
    sharded = run_app(
        app, nprocs, config=config, params=chan,  # type: ignore[arg-type]
        app_args=app_args, seed=seed, label=label,
        record_transfers=record_transfers,
        shards=shards, shard_sync=sync, shard_backend=backend,
        shard_strategy=strategy, shard_batch=batch,
        shard_fence_impl=fence_impl,
        shard_hosts=hosts, shard_transport=transport,
    )
    return single, sharded


def compare_sharded(single: "RunResult", sharded: "RunResult") -> list[Delta]:
    """Deltas between a single-process channel run and a sharded run.

    Reuses :func:`compare_runs` -- the ``fast`` side is the single-process
    run, the ``packet`` side the sharded one -- and adds the merged
    ground-truth transfer log when both runs recorded it (order inside the
    log is per-shard append order, so both sides are sorted first).
    """
    deltas = compare_runs(single, sharded)
    log_a = getattr(single.fabric, "transfer_log", None)
    log_b = getattr(sharded.fabric, "transfer_log", None)
    if log_a is not None or log_b is not None:
        a = sorted(log_a) if log_a is not None else None
        b = sorted(log_b) if log_b is not None else None
        deltas.append(Delta("transfer_log", a == b, a, b))
    return deltas


def assert_sharded_identical(
    app: typing.Callable[..., typing.Generator],
    nprocs: int,
    shards: int,
    **kwargs: object,
) -> list[Delta]:
    """Run the sharded differential and raise on any inequality.

    The one-call referee used by tests and the CI smoke job: any delta
    between the sharded run and its single-process ground truth is a
    correctness bug in the partitioned engine, never acceptable noise.
    """
    single, sharded = run_sharded_pair(app, nprocs, shards, **kwargs)  # type: ignore[arg-type]
    deltas = compare_sharded(single, sharded)
    bad = [d for d in deltas if not d.equal]
    if bad:
        lines = "\n".join(
            f"  {d.measure}: single={d.fast!r} sharded={d.packet!r}"
            for d in bad[:10]
        )
        raise AssertionError(
            f"sharded run diverged from single-process ground truth "
            f"({len(bad)} of {len(deltas)} measures):\n{lines}"
        )
    return deltas
