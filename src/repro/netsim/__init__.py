"""Simulated cluster interconnect substrate.

Models the parts of an InfiniBand-style user-level network that determine
computation-communication overlap:

* **NIC DMA engines** (:mod:`repro.netsim.nic`): once a descriptor is
  posted, data moves without host-CPU involvement -- the OS-bypass
  property the paper's introduction builds on;
* **verbs** -- send-channel, RDMA Write, and RDMA Read operations with
  completion-queue semantics (:mod:`repro.netsim.nic`);
* **a latency + bandwidth cost model** with per-NIC wire serialization
  (:mod:`repro.netsim.fabric`);
* **registered memory** with pinning costs and an MRU registration cache,
  the mechanism behind Open MPI's ``mpi_leave_pinned``
  (:mod:`repro.netsim.memory`).

Everything above this layer (MPI protocols, ARMCI, the progress engine)
lives in :mod:`repro.mpisim` and :mod:`repro.armci`.
"""

from repro.netsim.fabric import Fabric
from repro.netsim.memory import RegistrationCache
from repro.netsim.nic import CompletionEntry, CompletionKind, InboundPacket, Nic
from repro.netsim.params import NetworkParams

__all__ = [
    "CompletionEntry",
    "CompletionKind",
    "Fabric",
    "InboundPacket",
    "NetworkParams",
    "Nic",
    "RegistrationCache",
]
