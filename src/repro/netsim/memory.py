"""Registered-memory model: pinning costs and the MRU registration cache.

Zero-copy transfers on registered-memory networks require the user buffer
to be pinned.  Pinning is expensive; Open MPI's ``mpi_leave_pinned``
"supports caching of registrations in a most recently used list" (paper
Sec. 3.5), so repeated transfers from the same buffer skip the cost.  The
cache here is keyed by an abstract buffer identity (the simulated
application names its buffers), bounded by entry count and total pinned
bytes, and evicts least-recently-used registrations.
"""

from __future__ import annotations

import collections

from repro.netsim.params import NetworkParams


class RegistrationCache:
    """MRU cache of pinned memory regions.

    Parameters
    ----------
    params:
        Supplies the pin cost model.
    max_entries:
        Maximum cached registrations (0 disables caching: every
        registration pays full cost, as when ``leave_pinned`` is off).
    max_bytes:
        Maximum total pinned bytes held by the cache.
    """

    def __init__(
        self,
        params: NetworkParams,
        max_entries: int = 64,
        max_bytes: float = 1 << 30,
    ) -> None:
        if max_entries < 0 or max_bytes < 0:
            raise ValueError("cache limits must be non-negative")
        self.params = params
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "collections.OrderedDict[object, float]" = (
            collections.OrderedDict()
        )
        self._pinned_bytes = 0.0
        #: Diagnostics.
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def pinned_bytes(self) -> float:
        """Total bytes currently held pinned by the cache."""
        return self._pinned_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def register(self, key: object, nbytes: float) -> float:
        """Pin region ``key`` of ``nbytes``; returns the CPU cost in seconds.

        A cache hit (same key, size within the cached registration) costs
        nothing and refreshes recency.  A miss pays the pin cost and enters
        the cache, evicting LRU entries to respect the limits.
        """
        if nbytes < 0:
            raise ValueError("cannot register a negative-sized region")
        cached = self._entries.get(key)
        if cached is not None and cached >= nbytes:
            self._entries.move_to_end(key)
            self.hits += 1
            return 0.0
        self.misses += 1
        cost = self.params.pin_time(nbytes)
        if self.max_entries == 0:
            return cost  # caching disabled: pay every time
        if cached is not None:
            # Re-registering larger: drop the old entry first.
            self._pinned_bytes -= cached
            del self._entries[key]
        self._entries[key] = nbytes
        self._pinned_bytes += nbytes
        self._evict_to_limits(protect=key)
        return cost

    def invalidate(self, key: object) -> bool:
        """Explicitly unpin one region (e.g. on free). Returns True if found."""
        size = self._entries.pop(key, None)
        if size is None:
            return False
        self._pinned_bytes -= size
        return True

    def clear(self) -> None:
        """Unpin everything."""
        self._entries.clear()
        self._pinned_bytes = 0.0

    def _evict_to_limits(self, protect: object) -> None:
        while len(self._entries) > self.max_entries or (
            self._pinned_bytes > self.max_bytes and len(self._entries) > 1
        ):
            key, size = next(iter(self._entries.items()))
            if key == protect and len(self._entries) == 1:
                break
            del self._entries[key]
            self._pinned_bytes -= size
            self.evictions += 1
