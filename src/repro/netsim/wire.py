"""Batched binary frames for cross-shard channel traffic.

The sharded engine's coordinator exchanges :class:`~repro.netsim.channel.
ChannelMsg` lists with its workers over multiprocessing pipes.  Pickling
each message individually (ten fields, a nested packet NamedTuple, a
verdict tuple) dominates the pipe cost once thousands of ranks push
thousands of messages per synchronization round.  This module coalesces
one round's message list into a single compact :class:`Frame`:

* the hot class -- eager ``DELIVER`` messages carrying an
  :class:`~repro.mpisim.packets.EagerPacket` -- is packed as struct'd
  float/int *columns* (one C-level ``struct.pack`` call per column), with
  the payload ``data`` field dedup-interned into a small value table
  (bounce-buffer keys repeat heavily, so the table stays tiny);
* everything else (rendezvous control, RDMA placement/ACK/read traffic,
  fault-verdict oddities) rides a plain ``rest`` tuple that the pipe's
  own pickle handles -- correct for any payload, merely not accelerated.

Decoding rebuilds every message *bit-exactly*: float columns are raw
64-bit copies, ints are range-checked into fixed-width columns (an
out-of-range or unexpectedly-typed field demotes that message to
``rest``), and the original list order is preserved via a one-byte-per-
message interleave map.  ``unpack_frame(pack_frame(msgs)) == msgs`` is a
hard invariant, hypothesis-tested field by field in
``tests/test_sim_parallel.py`` -- the sharded engine's bit-identity
guarantee rests on it.
"""

from __future__ import annotations

import struct
import typing

from repro.netsim import channel as _ch

__all__ = ["Frame", "frame_nbytes", "pack_frame", "unpack_frame"]

#: Fixed-width numeric columns of one hot message, in pack order:
#: when, key, src_node, src_port, dst_node, dst_port, nbytes,
#: pkt.seq, pkt.src, pkt.tag, pkt.nbytes, pkt.ctx,
#: extra[0] (tx_end), flags (bit0=duplicate, bit1=reorder), data index.
_COLUMNS = (
    ("when", "d"), ("key", "q"),
    ("src_node", "i"), ("src_port", "H"),
    ("dst_node", "i"), ("dst_port", "H"),
    ("nbytes", "d"),
    ("pkt_seq", "q"), ("pkt_src", "i"), ("pkt_tag", "i"),
    ("pkt_nbytes", "d"), ("pkt_ctx", "i"),
    ("tx_end", "d"), ("flags", "B"), ("data_idx", "I"),
)
_INT32_MIN, _INT32_MAX = -(1 << 31), (1 << 31) - 1
_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1
_UINT16_MAX = (1 << 16) - 1

_EagerPacket: "type | None" = None


def _eager_packet_cls() -> type:
    """The hot payload class (imported lazily: mpisim imports netsim)."""
    global _EagerPacket
    if _EagerPacket is None:
        from repro.mpisim.packets import EagerPacket

        _EagerPacket = EagerPacket
    return _EagerPacket


class Frame(typing.NamedTuple):
    """One round's cross-shard messages, columnar where it pays.

    ``cols`` concatenates the struct-packed columns of the ``n`` hot
    messages; ``vals`` is the deduplicated payload-``data`` table the
    ``data_idx`` column points into; ``rest`` holds the messages the
    columnar path declined, and ``order`` (one byte per message,
    0=columnar 1=rest, ``None`` when ``rest`` is empty) restores the
    original interleaving.
    """

    n: int
    cols: bytes
    vals: tuple
    rest: tuple
    order: "bytes | None"


def pack_frame(msgs: "list[_ch.ChannelMsg]") -> Frame:
    """Encode one message list into a :class:`Frame` (order-preserving)."""
    eager = _eager_packet_cls()
    deliver = _ch.DELIVER
    whens: list[float] = []
    keys: list[int] = []
    src_nodes: list[int] = []
    src_ports: list[int] = []
    dst_nodes: list[int] = []
    dst_ports: list[int] = []
    nbytes_col: list[float] = []
    pkt_seqs: list[int] = []
    pkt_srcs: list[int] = []
    pkt_tags: list[int] = []
    pkt_nbytes: list[float] = []
    pkt_ctxs: list[int] = []
    tx_ends: list[float] = []
    flags_col: list[int] = []
    data_idxs: list[int] = []
    vals: list[object] = []
    val_idx: dict[object, int] = {}
    rest: list[_ch.ChannelMsg] = []
    order = bytearray(len(msgs))
    for pos, msg in enumerate(msgs):
        when, key, kind, src_node, src_port, dst_node, dst_port, \
            nbytes, pkt, extra = msg
        # The hot-class guard is deliberately strict about *types*, not
        # just values: struct would happily coerce an int into a double
        # column (or a bool into an int one) and the decoded message
        # would compare unequal to the original.
        if (
            kind == deliver
            and pkt.__class__ is eager
            and type(extra) is tuple and len(extra) == 3
            and type(extra[0]) is float
            and type(extra[1]) is bool and type(extra[2]) is bool
            and type(when) is float and type(nbytes) is float
            and type(pkt[3]) is float
            and type(key) is int
            and type(src_node) is int and type(src_port) is int
            and type(dst_node) is int and type(dst_port) is int
            and type(pkt[0]) is int and type(pkt[1]) is int
            and type(pkt[2]) is int and type(pkt[5]) is int
            and _INT64_MIN <= key <= _INT64_MAX
            and _INT64_MIN <= pkt[0] <= _INT64_MAX
            and 0 <= src_node <= _INT32_MAX
            and 0 <= dst_node <= _INT32_MAX
            and 0 <= src_port <= _UINT16_MAX
            and 0 <= dst_port <= _UINT16_MAX
            and _INT32_MIN <= pkt[1] <= _INT32_MAX
            and _INT32_MIN <= pkt[2] <= _INT32_MAX
            and _INT32_MIN <= pkt[5] <= _INT32_MAX
        ):
            data = pkt[4]
            try:
                idx = val_idx.setdefault(data, len(vals))
            except TypeError:  # unhashable data object
                rest.append(msg)
                order[pos] = 1
                continue
            if idx == len(vals):
                vals.append(data)
            whens.append(when)
            keys.append(key)
            src_nodes.append(src_node)
            src_ports.append(src_port)
            dst_nodes.append(dst_node)
            dst_ports.append(dst_port)
            nbytes_col.append(nbytes)
            pkt_seqs.append(pkt[0])
            pkt_srcs.append(pkt[1])
            pkt_tags.append(pkt[2])
            pkt_nbytes.append(pkt[3])
            pkt_ctxs.append(pkt[5])
            tx_ends.append(extra[0])
            flags_col.append((1 if extra[1] else 0) | (2 if extra[2] else 0))
            data_idxs.append(idx)
        else:
            rest.append(msg)
            order[pos] = 1
    n = len(whens)
    cols = b"".join((
        struct.pack(f"<{n}d", *whens),
        struct.pack(f"<{n}q", *keys),
        struct.pack(f"<{n}i", *src_nodes),
        struct.pack(f"<{n}H", *src_ports),
        struct.pack(f"<{n}i", *dst_nodes),
        struct.pack(f"<{n}H", *dst_ports),
        struct.pack(f"<{n}d", *nbytes_col),
        struct.pack(f"<{n}q", *pkt_seqs),
        struct.pack(f"<{n}i", *pkt_srcs),
        struct.pack(f"<{n}i", *pkt_tags),
        struct.pack(f"<{n}d", *pkt_nbytes),
        struct.pack(f"<{n}i", *pkt_ctxs),
        struct.pack(f"<{n}d", *tx_ends),
        struct.pack(f"<{n}B", *flags_col),
        struct.pack(f"<{n}I", *data_idxs),
    )) if n else b""
    return Frame(
        n=n, cols=cols, vals=tuple(vals), rest=tuple(rest),
        order=bytes(order) if rest else None,
    )


def frame_nbytes(frame: Frame) -> int:
    """Approximate payload footprint of one frame, in bytes.

    Counts the struct'd columns, the interleave map, and the lengths of
    sized payload values; ``rest`` messages and unsized values are
    charged a nominal 8 bytes each (their true size depends on the
    pickler).  The socket shard backend uses this to split measured
    socket traffic into simulation payload vs framing/pickle/heartbeat
    overhead -- an accounting aid, not part of the codec invariant.
    """
    total = len(frame.cols)
    if frame.order is not None:
        total += len(frame.order)
    for val in frame.vals:
        try:
            total += len(val)  # type: ignore[arg-type]
        except TypeError:
            total += 8
    total += 8 * len(frame.rest)
    return total


def unpack_frame(frame: Frame) -> "list[_ch.ChannelMsg]":
    """Decode a :class:`Frame` back into its original message list."""
    n = frame.n
    if not n:
        return list(frame.rest)
    eager = _eager_packet_cls()
    deliver = _ch.DELIVER
    cols = frame.cols
    vals = frame.vals
    off = 0
    unpacked = []
    for _name, fmt in _COLUMNS:
        size = struct.calcsize(f"<{n}{fmt}")
        unpacked.append(struct.unpack_from(f"<{n}{fmt}", cols, off))
        off += size
    (whens, keys, src_nodes, src_ports, dst_nodes, dst_ports, nbytes_col,
     pkt_seqs, pkt_srcs, pkt_tags, pkt_nbytes, pkt_ctxs, tx_ends,
     flags_col, data_idxs) = unpacked
    # Reassembly runs entirely through C-level map/zip pipelines: two
    # tuple constructions per message is the floor, everything around
    # them stays out of the bytecode loop.
    pkts = map(eager._make, zip(
        pkt_seqs, pkt_srcs, pkt_tags, pkt_nbytes,
        map(vals.__getitem__, data_idxs), pkt_ctxs,
    ))
    extras = zip(tx_ends,
                 map((False, True, False, True).__getitem__, flags_col),
                 map((False, False, True, True).__getitem__, flags_col))
    make = _ch.ChannelMsg._make
    kinds = (deliver,) * n
    hot = list(map(make, zip(
        whens, keys, kinds, src_nodes, src_ports, dst_nodes, dst_ports,
        nbytes_col, pkts, extras,
    )))
    if frame.order is None:
        return hot
    hot_it = iter(hot)
    rest_it = iter(frame.rest)
    return [
        next(rest_it) if flag else next(hot_it)
        for flag in frame.order
    ]
