"""NAS EP: embarrassingly parallel random-number statistics.

"We do not report performance of EP as it performs minimal communication"
(Sec. 4) -- included for suite completeness: a large computation followed
by three small reductions.
"""

from __future__ import annotations

import typing

from repro.nas.base import WORD, CpuModel
from repro.nas.classes import problem
from repro.runtime.world import RankContext

#: Gaussian-pair generation cost per sample.
FLOPS_PER_SAMPLE = 30.0


def ep_app(
    ctx: RankContext,
    klass: str = "S",
    cpu: CpuModel | None = None,
    sample_fraction: float = 1.0,
) -> typing.Generator:
    """Run EP on one rank; returns the pair-count verification value.

    ``sample_fraction`` scales the sample count down for fast tests
    (communication is unaffected -- there barely is any).
    """
    pc = problem("ep", klass)
    cpu = cpu or CpuModel()
    if not 0 < sample_fraction <= 1.0:
        raise ValueError("sample_fraction must be in (0, 1]")
    samples = (2.0 ** pc.dims[0]) * sample_fraction / ctx.size
    yield from ctx.compute(cpu.time_for(samples * FLOPS_PER_SAMPLE))
    # Global sums: sx, sy, and the 10 annulus counts (modeled as 3 small
    # allreduces, as in the NPB source).
    sx = yield from ctx.comm.allreduce(float(ctx.rank), WORD)
    sy = yield from ctx.comm.allreduce(float(ctx.rank) * 2.0, WORD)
    counts = yield from ctx.comm.allreduce(1.0, 10 * WORD)
    assert counts == float(ctx.size)
    return (sx, sy, counts)
