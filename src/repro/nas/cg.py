"""NAS CG: conjugate gradient on a random sparse matrix.

Communication structure per NPB 3.2 ``cg.f``: the matrix is distributed on
a ``num_proc_rows x num_proc_cols`` grid (both powers of two).  Every CG
iteration performs

* a sparse matvec (the dominant computation),
* a row-wise partial-sum reduction of the result vector
  (``l2npcols`` exchanges of shrinking vector segments),
* a transpose exchange with the rank's transpose partner
  (``na / num_proc_cols`` doubles -- the benchmark's largest message),
* two scalar dot-product reductions (``l2npcols`` 8-byte exchanges each).

"CG sends a larger proportion of short messages" than BT (paper
Sec. 4.1): the scalar reductions dominate the message count, while the
transpose dominates the byte count -- and grows with class, which is why
"for larger problem sizes and smaller processor counts ... observed
overlaps drop".
"""

from __future__ import annotations

import typing

from repro.nas.base import WORD, CpuModel, cg_proc_grid
from repro.nas.classes import problem
from repro.runtime.world import RankContext

#: Inner CG iterations per outer iteration (NPB's cgitmax).
CG_INNER = 25

_TAG_ROWSUM = 100
_TAG_TRANSPOSE = 101
_TAG_DOT = 102


def transpose_partner(rank: int, rows: int, cols: int) -> int:
    """NPB CG's transpose-exchange partner (an involution for cols ==
    rows and for cols == 2 * rows, the only legal shapes)."""
    r, c = divmod(rank, cols)
    return (c % rows) * cols + (r + rows * (c // rows))


def _sendrecv(ctx: RankContext, peer: int, tag: int, nbytes: float) -> typing.Generator:
    """NPB CG's exchange idiom: irecv posted, then send, then wait."""
    req = yield from ctx.comm.irecv(peer, tag)
    yield from ctx.comm.send(peer, tag, nbytes)
    yield from ctx.comm.wait(req)


def cg_app(
    ctx: RankContext,
    klass: str = "A",
    niter: int | None = None,
    cpu: CpuModel | None = None,
    inner: int = CG_INNER,
) -> typing.Generator:
    """Run CG on one rank; returns the verification scalar (identical on
    every rank)."""
    pc = problem("cg", klass)
    cpu = cpu or CpuModel()
    na, nonzer, _ = pc.dims
    outer = pc.niter if niter is None else niter
    rows, cols = cg_proc_grid(ctx.size)
    l2npcols = cols.bit_length() - 1
    rank = ctx.rank
    row, col = divmod(rank, cols)

    # Per-rank structural sizes.
    nnz_total = na * (nonzer + 1) * (nonzer + 1)
    matvec_flops = 2.0 * nnz_total / ctx.size
    vector_flops = 8.0 * na / ctx.size  # axpys, dot products, etc.
    seg_bytes = max(WORD, na // cols * WORD)

    def row_peer(i: int) -> int:
        return row * cols + (col ^ (1 << i))

    exch = transpose_partner(rank, rows, cols)

    check = 0.0
    for it in range(outer):
        for _ in range(inner):
            # Sparse matvec.
            yield from ctx.compute(cpu.time_for(matvec_flops))
            # Row-wise partial-sum reduction: vector segments halve per stage.
            for i in range(l2npcols):
                size = max(WORD, seg_bytes >> (i + 1))
                yield from _sendrecv(ctx, row_peer(i), _TAG_ROWSUM, size)
            # Transpose exchange (skip when the partner is this rank).
            if exch != rank:
                yield from _sendrecv(ctx, exch, _TAG_TRANSPOSE, seg_bytes)
            # Vector updates.
            yield from ctx.compute(cpu.time_for(vector_flops))
            # Two scalar reductions (rho and d).
            for _ in range(2):
                for i in range(l2npcols):
                    yield from _sendrecv(ctx, row_peer(i), _TAG_DOT, WORD)
        # Outer-iteration residual norm: a true allreduce so all ranks can
        # verify agreement.
        local = float((rank + 1) * (it + 1))
        total = yield from ctx.comm.allreduce(local, WORD)
        check += total
    expected_last = sum(range(1, ctx.size + 1)) * outer * (outer + 1) / 2.0
    assert check == expected_last, "CG verification mismatch"
    return check
