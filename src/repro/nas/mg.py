"""NAS MG on ARMCI: multigrid V-cycles with one-sided ghost exchange.

Paper Sec. 4.4: "the NPB2.4 MPI version of the MG benchmark was modified
to replace point-to-point blocking and non-blocking message-passing
communication calls first with blocking and then non-blocking ARMCI
calls.  The ARMCI non-blocking version achieved improved performance over
the ARMCI blocking version by issuing non-blocking update in the next
dimension before actually working on the data in the current dimension."

Both variants are implemented here:

* ``blocking=True``  -- each ``comm3`` ghost exchange uses ``ARMCI_Put``
  per neighbour (begin and end inside one call: bounding case 1);
* ``blocking=False`` -- the next dimension's ``ARMCI_NbPut`` is issued
  before the current dimension's smoothing work, then waited afterwards
  (case 2 with ample interleaved computation -- the paper reports 99%
  maximum overlap for class B).
"""

from __future__ import annotations

import typing

from repro.armci.runtime import ArmciContext
from repro.armci.strided import StridedSpec
from repro.nas.base import WORD, CpuModel, is_power_of_two
from repro.nas.classes import problem

#: Calibrated flop count (NPB MG ~ 40 flops/pt over resid+psinv per level).
FLOPS_PER_POINT = 40.0
#: Fixed per-smoothing-pass cost (loop/call overhead; dominates the coarse
#: levels, where it is what the tiny ghost transfers overlap with).
LEVEL_OVERHEAD_S = 8e-6


def mg_proc_grid(nprocs: int) -> tuple[int, int, int]:
    """NPB MG's 3-D power-of-two process grid (z fastest-growing)."""
    if not is_power_of_two(nprocs):
        raise ValueError(f"{nprocs} ranks: MG needs a power of two")
    dims = [1, 1, 1]
    axis = 0
    remaining = nprocs
    while remaining > 1:
        dims[axis % 3] *= 2
        remaining //= 2
        axis += 1
    return tuple(dims)  # type: ignore[return-value]


def mg_app(
    ctx: ArmciContext,
    klass: str = "A",
    niter: int | None = None,
    cpu: CpuModel | None = None,
    blocking: bool = False,
    min_level: int = 2,
    strided: str | None = None,
) -> typing.Generator:
    """Run MG on one rank; returns the verification norm.

    ``strided`` selects the ghost-face wire strategy: ``None`` ships each
    face as one contiguous put (a pre-packed face buffer); ``"packed"``,
    ``"direct"``, or ``"auto"`` use ``ARMCI_NbPutS`` with the face
    expressed as its true strided shape (one pencil per row of the face),
    as the real ARMCI MG port does.
    """
    pc = problem("mg", klass)
    cpu = cpu or CpuModel()
    grid = pc.dims[0]
    iters = pc.niter if niter is None else niter
    px, py, pz = mg_proc_grid(ctx.size)
    rank = ctx.rank
    # Rank layout: rank = (ix * py + iy) * pz + iz.
    ix, rem = divmod(rank, py * pz)
    iy, iz = divmod(rem, pz)
    coords = (ix, iy, iz)
    pdims = (px, py, pz)

    ctx.malloc("ghost", 8)  # symbolic target window for size-only puts
    yield from ctx.armci.barrier()

    def neighbour(dim: int, direction: int) -> int:
        pos = list(coords)
        pos[dim] = (pos[dim] + direction) % pdims[dim]
        return (pos[0] * py + pos[1]) * pz + pos[2]

    top_level = max(min_level, (grid - 1).bit_length())
    levels = list(range(top_level, min_level - 1, -1))

    def face_bytes(level: int, dim: int) -> float:
        side = max(2, 1 << level)
        other = [d for d in range(3) if d != dim]
        extent = 1.0
        for d in other:
            extent *= max(1, side // pdims[d])
        return max(WORD, extent * WORD)

    def level_points(level: int) -> float:
        side = max(2, 1 << level)
        return float(side) ** 3 / ctx.size

    def face_spec(level: int, dim: int) -> StridedSpec:
        """The face's true strided shape: one pencil per face row."""
        side = max(2, 1 << level)
        other = [d for d in range(3) if d != dim]
        pencil = max(1, side // pdims[other[0]])
        rows = max(1, side // pdims[other[1]])
        return StridedSpec(
            offset=0,
            seg_nbytes=pencil * WORD,
            stride=side * WORD,
            count=rows,
        )

    def put_face_nb(dim: int, direction: int, level: int) -> typing.Generator:
        """One non-blocking ghost-face update (contiguous or strided)."""
        if strided is None:
            handle = yield from ctx.armci.nbput(
                neighbour(dim, direction), "ghost",
                nbytes=face_bytes(level, dim),
            )
        else:
            handle = yield from ctx.armci.nbput_strided(
                neighbour(dim, direction), "ghost", face_spec(level, dim),
                strategy=strided,
            )
        return handle

    def comm3_blocking(level: int) -> typing.Generator:
        """Ghost exchange, blocking puts: zero overlap possible (the whole
        transfer begins and ends inside one library call)."""
        for dim in range(3):
            if pdims[dim] == 1:
                continue
            for direction in (-1, 1):
                if strided is None:
                    yield from ctx.armci.put(
                        neighbour(dim, direction), "ghost",
                        nbytes=face_bytes(level, dim),
                    )
                else:
                    yield from ctx.armci.put_strided(
                        neighbour(dim, direction), "ghost",
                        face_spec(level, dim), strategy=strided,
                    )
        yield from ctx.armci.barrier()

    def smooth(level: int, fraction: float = 1.0) -> typing.Generator:
        yield from ctx.compute(
            LEVEL_OVERHEAD_S
            + cpu.time_for(level_points(level) * FLOPS_PER_POINT * fraction)
        )

    def comm3_nonblocking(level: int, total_fraction: float = 1.0) -> typing.Generator:
        """Ghost exchange, next dimension posted before current work."""
        dims = [d for d in range(3) if pdims[d] > 1]
        if not dims:
            yield from smooth(level, fraction=total_fraction)
            yield from ctx.armci.barrier()
            return
        handles: dict[int, list] = {}

        def post(dim: int) -> typing.Generator:
            hs = []
            for direction in (-1, 1):
                h = yield from put_face_nb(dim, direction, level)
                hs.append(h)
            handles[dim] = hs

        yield from post(dims[0])
        share = total_fraction / len(dims)
        for i, dim in enumerate(dims):
            if i + 1 < len(dims):
                yield from post(dims[i + 1])
            # Work on the current dimension while the next one's ghost
            # updates are in flight.
            yield from smooth(level, fraction=share)
            yield from ctx.armci.wait_all(handles[dim])
        yield from ctx.armci.barrier()

    for _it in range(iters):
        # Down-cycle: restrict through the levels.
        for level in levels:
            if blocking:
                yield from comm3_blocking(level)
                yield from smooth(level)
            else:
                yield from comm3_nonblocking(level)
        # Up-cycle: prolongate back (same exchange structure).
        for level in reversed(levels):
            if blocking:
                yield from comm3_blocking(level)
                yield from smooth(level, fraction=0.5)
            else:
                yield from comm3_nonblocking(level, total_fraction=0.5)

    norm = yield from ctx.armci.msg_allreduce(float(rank + 1))
    assert norm == ctx.size * (ctx.size + 1) / 2.0, "MG verification mismatch"
    return norm
