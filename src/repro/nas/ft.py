"""NAS FT: 3-D FFT via transposes.

Communication structure per NPB 3.2 ``ft/``: each iteration evolves the
spectrum (pure computation) and performs the distributed transpose -- one
``MPI_Alltoall`` moving the entire local volume -- plus a tiny checksum
reduction.  Setup broadcasts the problem parameters.

"Most of the communication in FT is done by the Alltoall collective which
sends long messages.  These transfers do not get overlapped with
computation.  The limited amount of overlap is due to short messages
being exchanged in collectives like Reduce and Bcast." (Sec. 4.2.)
"""

from __future__ import annotations

import typing

from repro.nas.base import CpuModel
from repro.nas.classes import problem
from repro.runtime.world import RankContext

#: Complex double: 16 bytes per grid point.
COMPLEX = 16

#: FFT cost: ~5 * log2(total points) flops per point per 3-D FFT pass.
def _fft_flops(points_total: float, points_local: float) -> float:
    import math

    return 5.0 * points_local * math.log2(max(2.0, points_total))


EVOLVE_FLOPS_PER_POINT = 6.0
CHECKSUM_BYTES = 16.0


def ft_app(
    ctx: RankContext,
    klass: str = "A",
    niter: int | None = None,
    cpu: CpuModel | None = None,
    layout: str = "1d",
) -> typing.Generator:
    """Run FT on one rank; returns the final checksum (identical everywhere).

    ``layout`` selects the NPB decomposition: ``"1d"`` (slabs; one global
    Alltoall per transpose) or ``"2d"`` (pencils on a ``p1 x p2`` process
    grid; two Alltoalls per transpose, each within a sub-communicator
    created by ``MPI_Comm_split``, as in the NPB source).
    """
    if layout not in ("1d", "2d"):
        raise ValueError(f"layout must be '1d' or '2d', got {layout!r}")
    pc = problem("ft", klass)
    cpu = cpu or CpuModel()
    steps = pc.niter if niter is None else niter
    total_points = pc.grid_points
    local_points = total_points / ctx.size

    if layout == "2d":
        from repro.nas.base import two_d_grid

        p1, p2 = two_d_grid(ctx.size)
        row_comm = yield from ctx.comm.split(color=ctx.rank // p2)
        col_comm = yield from ctx.comm.split(color=ctx.rank % p2)

        def transpose() -> typing.Generator:
            # All local data crosses each sub-communicator once.
            yield from row_comm.alltoall(
                max(COMPLEX, local_points * COMPLEX / row_comm.size)
            )
            yield from col_comm.alltoall(
                max(COMPLEX, local_points * COMPLEX / col_comm.size)
            )
    else:

        def transpose() -> typing.Generator:
            yield from ctx.comm.alltoall(
                max(COMPLEX, local_points * COMPLEX / ctx.size)
            )

    # Setup: parameters broadcast + initial plan agreement.
    params = yield from ctx.comm.bcast(0, 64, ("ft", klass) if ctx.rank == 0 else None)
    assert params == ("ft", klass)
    # Initial forward FFT (compute + transpose).
    yield from ctx.compute(cpu.time_for(_fft_flops(total_points, local_points)))
    yield from transpose()

    checksum = 0.0
    for step in range(steps):
        # evolve: elementwise exponential scaling.
        yield from ctx.compute(
            cpu.time_for(local_points * EVOLVE_FLOPS_PER_POINT)
        )
        # Inverse 3-D FFT: local passes + the distributed transpose.
        yield from ctx.compute(cpu.time_for(_fft_flops(total_points, local_points)))
        yield from transpose()
        # Checksum: a small reduction every iteration.
        local = float(ctx.rank + 1) * (step + 1)
        checksum = yield from ctx.comm.allreduce(local, CHECKSUM_BYTES)
    expected = sum(range(1, ctx.size + 1)) * steps
    assert checksum == expected, "FT verification mismatch"
    return checksum
