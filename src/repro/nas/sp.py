"""NAS SP: scalar-pentadiagonal ADI solver -- the paper's tuning subject.

Communication structure per NPB 3.2 ``sp/``: a square process grid; each
time step does ``copy_faces`` (large exchanges, no interleaved
computation) and three solve routines (``x_solve``, ``y_solve``,
``z_solve``).  Each solve pipelines forward and backward substitution
along the process line, and the benchmark "explicitly attempts overlap of
computation and communication ... at two places in the code, by computing
in between the posting of an Irecv and waiting for the communication to
complete" (Sec. 4.3).

Under a polling rendezvous library the attempt fails: the sender's RTS
arrives while the receiver is computing, is only drained inside
``MPI_Wait``, and the transfer resolves as bounding case 1.  The paper's
fix -- and the ``modified=True`` variant here -- inserts ``MPI_Iprobe``
calls into the computation region, running the progress engine early so
the data transfer proceeds during the remaining computation.

The solve routines run inside monitoring section ``"solve_overlap"`` so
the framework can report the overlapping section separately from the
whole code, as the paper does in Figs. 14-17.
"""

from __future__ import annotations

import typing

from repro.nas.base import WORD, CpuModel, square_grid_side
from repro.nas.classes import problem
from repro.runtime.world import RankContext

_TAG_FACE = 400
_TAG_FWD = 410
_TAG_BWD = 420

#: Calibrated flop counts (NPB SP ~ 2500 flops/pt/iter).
RHS_FLOPS_PER_POINT = 800.0
#: Per direction, split across the pipeline stages and the two substitution
#: phases.
SOLVE_FLOPS_PER_POINT = 550.0

#: Section name used for the Figs. 14/15 "overlapping section" measurement.
OVERLAP_SECTION = "solve_overlap"


def sp_message_bytes(grid: int, side: int) -> float:
    """Boundary data per pipeline stage: 22 doubles per face point (the
    NPB SP lhs/rhs boundary payload)."""
    cells = max(1, grid // side)
    return 22.0 * cells * cells * WORD


def sp_app(
    ctx: RankContext,
    klass: str = "A",
    niter: int | None = None,
    cpu: CpuModel | None = None,
    modified: bool = False,
    iprobe_calls: int = 4,
) -> typing.Generator:
    """Run SP on one rank; returns the verification scalar.

    ``modified=True`` enables the paper's Sec.-4.3 Iprobe tuning with
    ``iprobe_calls`` probes spread through each overlap computation region.
    """
    pc = problem("sp", klass)
    cpu = cpu or CpuModel()
    grid = pc.dims[0]
    steps = pc.niter if niter is None else niter
    side = square_grid_side(ctx.size)
    rank = ctx.rank
    row, col = divmod(rank, side)

    local_points = pc.grid_points / ctx.size
    cells = max(1, grid // side)
    # 5 solution variables, 2-deep ghost layers on each face.
    face_bytes = 5 * 2 * cells * grid * WORD
    stage_bytes = sp_message_bytes(grid, side)
    # Per direction: 2 phases x `side` stages x 2 compute blocks per stage.
    stage_flops = local_points * SOLVE_FLOPS_PER_POINT / (4 * side)

    def at(r: int, c: int) -> int:
        return (r % side) * side + (c % side)

    neighbours = [at(row, col - 1), at(row, col + 1), at(row - 1, col), at(row + 1, col)]

    def copy_faces() -> typing.Generator:
        """Large exchanges "with no computation to overlap" (Sec. 4.3)."""
        if side == 1:
            return
        reqs = []
        for nb in neighbours:
            reqs.append((yield from ctx.comm.irecv(nb, _TAG_FACE)))
        for nb in neighbours:
            reqs.append((yield from ctx.comm.isend(nb, _TAG_FACE, face_bytes)))
        yield from ctx.comm.waitall(reqs)

    def overlap_compute(pred: int | None, tag: int) -> typing.Generator:
        """The computation placed between Irecv and Wait.

        In the modified variant, Iprobe calls are sprinkled through it so
        the polling progress engine can start the pending rendezvous.
        """
        if modified and pred is not None and iprobe_calls > 0:
            chunk = cpu.time_for(stage_flops) / (iprobe_calls + 1)
            for _ in range(iprobe_calls):
                yield from ctx.compute(chunk)
                yield from ctx.comm.iprobe(pred, tag)
            yield from ctx.compute(chunk)
        else:
            yield from ctx.compute(cpu.time_for(stage_flops))

    def substitution(direction: int, backward: bool) -> typing.Generator:
        """One multipartition substitution phase (an overlap-attempt site).

        Every rank works on one of its cells per stage; the boundary sent
        at the end of stage ``s`` is consumed by the successor early in
        stage ``s + 1`` -- so the message is in flight during the
        receiver's factorization compute, which is exactly the window the
        Irecv-compute-Wait idiom tries (and, under polling progress,
        fails) to exploit.
        """
        if direction == 0:
            before, after = at(row, col - 1), at(row, col + 1)
        else:
            before, after = at(row - 1, col), at(row + 1, col)
        if backward:
            pred, succ = after, before
            tag = _TAG_BWD + direction
        else:
            pred, succ = before, after
            tag = _TAG_FWD + direction
        send_req = None
        for stage in range(side):
            req = None
            if stage > 0 and side > 1:
                req = yield from ctx.comm.irecv(pred, tag)
            # The explicit overlap attempt: compute while the message moves.
            yield from overlap_compute(pred if req is not None else None, tag)
            if req is not None:
                yield from ctx.comm.wait(req)
            if send_req is not None:
                # Reclaim the previous stage's send buffer (NPB keeps the
                # isend request and waits before reuse).
                yield from ctx.comm.wait(send_req)
                send_req = None
            # Solve this stage's cell with the received boundary.
            yield from ctx.compute(cpu.time_for(stage_flops))
            if stage < side - 1 and side > 1:
                send_req = yield from ctx.comm.isend(succ, tag, stage_bytes)
        if send_req is not None:
            yield from ctx.comm.wait(send_req)

    def solve(direction: int) -> typing.Generator:
        with ctx.section(OVERLAP_SECTION):
            yield from substitution(direction, backward=False)
            yield from substitution(direction, backward=True)

    check = 0.0
    for _step in range(steps):
        yield from copy_faces()
        yield from ctx.compute(cpu.time_for(local_points * RHS_FLOPS_PER_POINT))
        for direction in range(3):
            yield from solve(direction)
    check = yield from ctx.comm.allreduce(float(rank + 1), WORD)
    assert check == ctx.size * (ctx.size + 1) / 2.0, "SP verification mismatch"
    return check
