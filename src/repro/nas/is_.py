"""NAS IS: integer bucket sort.

"IS ... exhibits similar overlap behavior to FT" (Sec. 4): the key
exchange is an Alltoallv inside one call, preceded by a small Alltoall of
bucket counts and an Allreduce -- long collective transfers with no
overlap opportunity.
"""

from __future__ import annotations

import typing

from repro.nas.base import CpuModel
from repro.nas.classes import problem
from repro.runtime.world import RankContext

#: Integer key size in bytes.
KEY = 4
#: Counting-sort cost per key per pass.
FLOPS_PER_KEY = 8.0


def is_app(
    ctx: RankContext,
    klass: str = "S",
    niter: int | None = None,
    cpu: CpuModel | None = None,
) -> typing.Generator:
    """Run IS on one rank; returns the verified ranking checksum."""
    pc = problem("is", klass)
    cpu = cpu or CpuModel()
    steps = pc.niter if niter is None else niter
    total_keys = 2.0 ** pc.dims[0]
    local_keys = total_keys / ctx.size
    #: Each rank redistributes its keys across all ranks.
    block_bytes = max(KEY, local_keys * KEY / ctx.size)
    bucket_info_bytes = ctx.size * KEY

    checksum = 0.0
    for step in range(steps):
        # Local bucket counting.
        yield from ctx.compute(cpu.time_for(local_keys * FLOPS_PER_KEY))
        # Bucket-size exchange (small) then key redistribution (large).
        yield from ctx.comm.alltoall(bucket_info_bytes)
        yield from ctx.comm.alltoallv([block_bytes] * ctx.size)
        # Local ranking of received keys.
        yield from ctx.compute(cpu.time_for(local_keys * FLOPS_PER_KEY / 2))
        # Partial verification.
        checksum = yield from ctx.comm.allreduce(float(ctx.rank + step), KEY * 2)
    expected = sum(range(ctx.size)) + ctx.size * (steps - 1)
    assert checksum == expected, "IS verification mismatch"
    return checksum
