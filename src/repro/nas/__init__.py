"""NAS Parallel Benchmark kernels (NPB 3.2), communication-faithful.

Each kernel reproduces the NPB benchmark's *communication structure* --
message sizes, counts, partners, and call shapes (blocking receive,
Irecv-compute-Wait, collectives) -- together with a calibrated
compute-time model per problem class, which is what the overlap
characterization of the paper's Sec. 4 depends on.  The numerical physics
is replaced by lightweight consistency arithmetic (verified in tests);
absolute Mop/s are out of scope (DESIGN.md Sec. 2).

Kernels: BT, CG, LU, FT, SP (MPI), MG (ARMCI), EP and IS (MPI; the paper
omits their plots -- EP barely communicates, IS behaves like FT).
"""

from repro.nas.base import CpuModel, square_grid_side
from repro.nas.classes import CLASSES, ProblemClass, problem

__all__ = [
    "CLASSES",
    "CpuModel",
    "ProblemClass",
    "problem",
    "square_grid_side",
]
