"""NAS LU: SSOR with a pipelined wavefront.

Communication structure per NPB 3.2 ``lu/``: a 2-D process grid.  The
lower- and upper-triangular sweeps move a wavefront over the k planes;
each plane receives thin boundary pencils from north and west (blocking
``MPI_Recv``, exactly the NPB ``exchange_1`` idiom), computes, and sends
south and east.  After the sweeps, ``exchange_3`` trades large faces for
the right-hand side.

"LU primarily performs point-to-point communication with a mix of short
and long messages.  A substantial portion of the payload comprises of
short messages" (Sec. 4.2): the wavefront pencils are small and numerous;
``exchange_3`` faces are large and few.  With decreasing problem size or
increasing processor count the short-message share grows -- and with it
the measured overlap, which the paper reports above 70%.
"""

from __future__ import annotations

import typing

from repro.nas.base import WORD, CpuModel, two_d_grid
from repro.nas.classes import problem
from repro.runtime.world import RankContext

_TAG_WAVE = 300
_TAG_FACE = 310

#: Calibrated flop counts (NPB LU ~ 1600 flops/pt/iter over both sweeps).
SWEEP_FLOPS_PER_POINT = 500.0  # per sweep (jacld/blts or jacu/buts)
RHS_FLOPS_PER_POINT = 600.0


def lu_app(
    ctx: RankContext,
    klass: str = "A",
    niter: int | None = None,
    cpu: CpuModel | None = None,
    planes: int | None = None,
) -> typing.Generator:
    """Run LU on one rank; returns the verification scalar.

    ``planes`` optionally caps the number of wavefront k-planes per sweep
    (the real count is the grid height) to shorten test runs without
    changing message sizes.
    """
    pc = problem("lu", klass)
    cpu = cpu or CpuModel()
    grid = pc.dims[0]
    steps = pc.niter if niter is None else niter
    px, py = two_d_grid(ctx.size)
    rank = ctx.rank
    row, col = divmod(rank, py)
    nz = grid if planes is None else min(planes, grid)

    nx_local = max(1, grid // px)
    ny_local = max(1, grid // py)
    pencil_ns = 5 * ny_local * WORD  # north/south boundary pencil
    pencil_ew = 5 * nx_local * WORD  # east/west boundary pencil
    face_bytes = 5 * max(nx_local, ny_local) * grid * WORD

    def at(r: int, c: int) -> int:
        return r * py + c

    plane_points = nx_local * ny_local
    plane_flops = plane_points * SWEEP_FLOPS_PER_POINT

    def wavefront(reverse: bool) -> typing.Generator:
        """One triangular sweep; ``reverse`` flips the pipeline direction."""
        for _k in range(nz):
            if not reverse:
                if row > 0:
                    yield from ctx.comm.recv(at(row - 1, col), _TAG_WAVE)
                if col > 0:
                    yield from ctx.comm.recv(at(row, col - 1), _TAG_WAVE)
            else:
                if row < px - 1:
                    yield from ctx.comm.recv(at(row + 1, col), _TAG_WAVE)
                if col < py - 1:
                    yield from ctx.comm.recv(at(row, col + 1), _TAG_WAVE)
            yield from ctx.compute(cpu.time_for(plane_flops))
            if not reverse:
                if row < px - 1:
                    yield from ctx.comm.send(at(row + 1, col), _TAG_WAVE, pencil_ns)
                if col < py - 1:
                    yield from ctx.comm.send(at(row, col + 1), _TAG_WAVE, pencil_ew)
            else:
                if row > 0:
                    yield from ctx.comm.send(at(row - 1, col), _TAG_WAVE, pencil_ns)
                if col > 0:
                    yield from ctx.comm.send(at(row, col - 1), _TAG_WAVE, pencil_ew)

    def exchange_3() -> typing.Generator:
        """Large-face boundary exchange for the RHS (non-periodic)."""
        reqs = []
        partners = []
        if row > 0:
            partners.append(at(row - 1, col))
        if row < px - 1:
            partners.append(at(row + 1, col))
        if col > 0:
            partners.append(at(row, col - 1))
        if col < py - 1:
            partners.append(at(row, col + 1))
        for nb in partners:
            reqs.append((yield from ctx.comm.irecv(nb, _TAG_FACE)))
        for nb in partners:
            reqs.append((yield from ctx.comm.isend(nb, _TAG_FACE, face_bytes)))
        yield from ctx.comm.waitall(reqs)

    local_points = pc.grid_points / ctx.size
    residual = 0.0
    for step in range(steps):
        yield from wavefront(reverse=False)  # lower-triangular (blts)
        yield from wavefront(reverse=True)  # upper-triangular (buts)
        yield from exchange_3()
        yield from ctx.compute(cpu.time_for(local_points * RHS_FLOPS_PER_POINT))
        # Residual norm: all ranks must agree.
        residual = yield from ctx.comm.allreduce(float(rank + step), WORD)
    expected = sum(range(ctx.size)) + ctx.size * (steps - 1)
    assert residual == expected, "LU verification mismatch"
    return residual
