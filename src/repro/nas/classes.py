"""NPB 3.2 problem-class tables.

Grid sizes and structural parameters are the official NPB values; default
iteration counts are the official ones, but every kernel accepts a smaller
``niter`` so simulations stay fast (iteration count scales run length, not
per-iteration communication structure).
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class ProblemClass:
    """Parameters of one benchmark at one class."""

    benchmark: str
    klass: str
    #: 3-D grid (nx, ny, nz) for grid benchmarks; (na, nonzer, 0) for CG;
    #: (log2 samples, 0, 0) for EP; (log2 keys, log2 max key, 0) for IS.
    dims: tuple[int, int, int]
    #: Official iteration count.
    niter: int

    @property
    def grid_points(self) -> float:
        nx, ny, nz = self.dims
        return float(nx) * max(ny, 1) * max(nz, 1)


_T = ProblemClass

#: benchmark -> class letter -> parameters.
CLASSES: dict[str, dict[str, ProblemClass]] = {
    "cg": {
        "S": _T("cg", "S", (1400, 7, 0), 15),
        "W": _T("cg", "W", (7000, 8, 0), 15),
        "A": _T("cg", "A", (14000, 11, 0), 15),
        "B": _T("cg", "B", (75000, 13, 0), 75),
    },
    "ft": {
        "S": _T("ft", "S", (64, 64, 64), 6),
        "W": _T("ft", "W", (128, 128, 32), 6),
        "A": _T("ft", "A", (256, 256, 128), 6),
        "B": _T("ft", "B", (512, 256, 256), 20),
    },
    "lu": {
        "S": _T("lu", "S", (12, 12, 12), 50),
        "W": _T("lu", "W", (33, 33, 33), 300),
        "A": _T("lu", "A", (64, 64, 64), 250),
        "B": _T("lu", "B", (102, 102, 102), 250),
    },
    "bt": {
        "S": _T("bt", "S", (12, 12, 12), 60),
        "W": _T("bt", "W", (24, 24, 24), 200),
        "A": _T("bt", "A", (64, 64, 64), 200),
        "B": _T("bt", "B", (102, 102, 102), 200),
    },
    "sp": {
        "S": _T("sp", "S", (12, 12, 12), 100),
        "W": _T("sp", "W", (36, 36, 36), 400),
        "A": _T("sp", "A", (64, 64, 64), 400),
        "B": _T("sp", "B", (102, 102, 102), 400),
    },
    "mg": {
        "S": _T("mg", "S", (32, 32, 32), 4),
        "W": _T("mg", "W", (128, 128, 128), 4),
        "A": _T("mg", "A", (256, 256, 256), 4),
        "B": _T("mg", "B", (256, 256, 256), 20),
    },
    "ep": {
        "S": _T("ep", "S", (24, 0, 0), 1),
        "W": _T("ep", "W", (25, 0, 0), 1),
        "A": _T("ep", "A", (28, 0, 0), 1),
        "B": _T("ep", "B", (30, 0, 0), 1),
    },
    "is": {
        "S": _T("is", "S", (16, 11, 0), 10),
        "W": _T("is", "W", (20, 16, 0), 10),
        "A": _T("is", "A", (23, 19, 0), 10),
        "B": _T("is", "B", (25, 21, 0), 10),
    },
}


def problem(benchmark: str, klass: str) -> ProblemClass:
    """Look up one benchmark/class pair (KeyError-safe with clear message)."""
    bench = CLASSES.get(benchmark.lower())
    if bench is None:
        raise ValueError(
            f"unknown benchmark {benchmark!r}; choose from {sorted(CLASSES)}"
        )
    pc = bench.get(klass.upper())
    if pc is None:
        raise ValueError(
            f"unknown class {klass!r} for {benchmark}; choose from "
            f"{sorted(bench)}"
        )
    return pc
