"""Shared scaffolding for the NAS kernels."""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class CpuModel:
    """Host compute-speed model.

    ``flop_rate`` is a *sustained* rate for NPB-era Xeons (the paper's
    2.4 GHz P4 Xeon sustains a few hundred Mflop/s on these kernels, far
    below peak).  Kernels convert their per-iteration flop counts into
    simulated computation time through this single knob, so the
    compute:communication ratio -- the quantity the overlap study depends
    on -- scales the way the real benchmarks scale.
    """

    flop_rate: float = 400e6

    def time_for(self, flops: float) -> float:
        """Seconds of CPU time for ``flops`` floating-point operations."""
        if flops < 0:
            raise ValueError(f"negative flop count {flops!r}")
        return flops / self.flop_rate

    def __post_init__(self) -> None:
        if self.flop_rate <= 0:
            raise ValueError("flop_rate must be positive")


#: Bytes per double-precision word (all NPB payloads are doubles).
WORD = 8


def square_grid_side(nprocs: int) -> int:
    """Side of a square process grid; raises unless ``nprocs`` is square.

    BT and SP require square counts (the paper uses 4, 9, 16).
    """
    side = math.isqrt(nprocs)
    if side * side != nprocs:
        raise ValueError(f"{nprocs} ranks: BT/SP need a perfect square")
    return side


def two_d_grid(nprocs: int) -> tuple[int, int]:
    """Near-square 2-D factorization (px <= py, px * py == nprocs)."""
    px = math.isqrt(nprocs)
    while nprocs % px != 0:
        px -= 1
    return px, nprocs // px


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def cg_proc_grid(nprocs: int) -> tuple[int, int]:
    """CG's process grid: num_proc_rows x num_proc_cols, both powers of
    two with cols >= rows (the NPB constraint)."""
    if not is_power_of_two(nprocs):
        raise ValueError(f"{nprocs} ranks: CG needs a power of two")
    log2 = nprocs.bit_length() - 1
    rows = 1 << (log2 // 2)
    cols = nprocs // rows
    return rows, cols
