"""NAS BT: block-tridiagonal ADI solver.

Communication structure per NPB 3.2 ``bt/``: a square process grid
(P in {4, 9, 16, ...}); every time step does

* ``copy_faces``: large face exchanges with the four grid neighbours
  (all Irecv/Isend posted, one Waitall -- no interleaved computation);
* three ADI sweeps (x, y, z), each a pipeline of ``sqrt(P)`` stages with
  a blocking receive from the predecessor, per-stage computation, and a
  send to the successor.

"Long messages constitute the majority of communication for BT" (paper
Sec. 4.1), which is why its overlap numbers sit below CG's.
"""

from __future__ import annotations

import typing

from repro.nas.base import WORD, CpuModel, square_grid_side
from repro.nas.classes import problem
from repro.runtime.world import RankContext

_TAG_FACE = 200
_TAG_SWEEP = 210

#: Calibrated per-grid-point flop counts (NPB BT ~ 3000 flops/pt/iter).
RHS_FLOPS_PER_POINT = 900.0
SOLVE_FLOPS_PER_POINT = 700.0  # per direction


def bt_app(
    ctx: RankContext,
    klass: str = "A",
    niter: int | None = None,
    cpu: CpuModel | None = None,
) -> typing.Generator:
    """Run BT on one rank; returns the rank-agreed verification scalar."""
    pc = problem("bt", klass)
    cpu = cpu or CpuModel()
    grid = pc.dims[0]
    steps = pc.niter if niter is None else niter
    side = square_grid_side(ctx.size)
    rank = ctx.rank
    row, col = divmod(rank, side)

    local_points = pc.grid_points / ctx.size
    cells = max(1, grid // side)
    # 5 solution variables, 2-deep ghost layers on each face.
    face_bytes = 5 * 2 * cells * grid * WORD
    sweep_bytes = 5 * cells * cells * WORD * 5  # 5x5 block boundary data

    def at(r: int, c: int) -> int:
        return (r % side) * side + (c % side)

    neighbours = [at(row, col - 1), at(row, col + 1), at(row - 1, col), at(row + 1, col)]

    def copy_faces() -> typing.Generator:
        if side == 1:
            return
        reqs = []
        for nb in neighbours:
            reqs.append((yield from ctx.comm.irecv(nb, _TAG_FACE)))
        for nb in neighbours:
            reqs.append((yield from ctx.comm.isend(nb, _TAG_FACE, face_bytes)))
        yield from ctx.comm.waitall(reqs)

    def sweep(direction: int) -> typing.Generator:
        """One multipartition ADI sweep: every rank solves one of its cells
        per stage, receiving its boundary (blocking -- BT makes no overlap
        attempt) and forwarding to the next cell's owner."""
        if direction == 0:
            pred, succ = at(row, col - 1), at(row, col + 1)
        else:
            pred, succ = at(row - 1, col), at(row + 1, col)
        stage_flops = local_points * SOLVE_FLOPS_PER_POINT / side
        tag = _TAG_SWEEP + direction
        send_req = None
        for stage in range(side):
            if stage > 0 and side > 1:
                yield from ctx.comm.recv(pred, tag)
            if send_req is not None:
                yield from ctx.comm.wait(send_req)
                send_req = None
            yield from ctx.compute(cpu.time_for(stage_flops))
            if stage < side - 1 and side > 1:
                send_req = yield from ctx.comm.isend(succ, tag, sweep_bytes)
        if send_req is not None:
            yield from ctx.comm.wait(send_req)

    check = 0.0
    for _step in range(steps):
        yield from copy_faces()
        yield from ctx.compute(cpu.time_for(local_points * RHS_FLOPS_PER_POINT))
        for direction in range(3):
            yield from sweep(direction)
    check = yield from ctx.comm.allreduce(float(rank + 1), WORD)
    assert check == ctx.size * (ctx.size + 1) / 2.0, "BT verification mismatch"
    return check
