"""The simulation engine: clock + pending-event store + run loop.

Three mechanisms beyond the classic heap loop, all preserving the exact
``(when, seq)`` total order that makes simulations pure functions of their
inputs:

* **Burst macro-events** (:class:`Burst`): a time-ordered train of
  lightweight sub-events scheduled as *one* pending entry.  The run loop
  retires sub-events in exact global order, yielding the remainder back to
  the store whenever a competing entry has a smaller key, so callback
  execution order -- and therefore every observable timestamp -- is
  bit-identical to posting each sub-event individually.  The network layer
  uses this to coalesce contiguous same-flow packet trains.
* **Lazy timeout cancellation**: :meth:`repro.sim.events.Timeout.cancel`
  marks the event dead in O(1); the run loop discards dead entries when
  popped, and the store is bulk-compacted once dead entries dominate, so
  wait-heavy workloads that abandon guard timeouts keep a bounded pending
  population.
* **Calendar-queue scheduling**: above :data:`CALENDAR_ENGAGE` pending
  entries the heap is migrated into a
  :class:`~repro.sim.calendar.CalendarQueue` (O(1) amortized scheduling);
  below :data:`CALENDAR_COLLAPSE` it collapses back to the plain heap,
  which is faster for small populations.
"""

from __future__ import annotations

import gc
import heapq
import time
import typing

from repro.sim.calendar import CalendarQueue
from repro.sim.events import Event, SimulationError, Timeout

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.metrics import MetricsRegistry
    from repro.sim.process import Process

_INF = float("inf")

#: Pending-entry count above which the heap migrates to a calendar queue.
CALENDAR_ENGAGE = 4096
#: Pending-entry count below which the calendar collapses back to a heap.
CALENDAR_COLLAPSE = 512

# Burst lifecycle: not scheduled (accepting tail subs) / scheduled in the
# pending store / currently being retired by the run loop.
_BURST_IDLE = 0
_BURST_QUEUED = 1
_BURST_RUNNING = 2


class Burst:
    """A macro-event: a time-ordered train of sub-events, scheduled as one.

    Producers (the NIC fast path) append sub-events with :meth:`try_at`;
    each append allocates the engine sequence number at the same program
    point a per-packet ``post`` would, and the run loop retires sub-events
    in exact ``(when, seq)`` order -- so a burst is observationally
    identical to posting every sub-event individually, at the cost of one
    pending-store entry instead of one per packet.

    ``callbacks`` is a permanent class-level ``None``: the run loop's
    existing ``event.callbacks`` load doubles as the macro-event
    discriminant, keeping the common dispatch path check-free.
    """

    callbacks = None  # class-level: run-loop discriminant, never assigned
    __slots__ = ("engine", "subs", "idx", "state", "closed", "last_when")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        #: Sub-event entries ``(when, seq, event)``, sorted by construction.
        self.subs: list[tuple[float, int, Event]] = []
        #: Index of the next unretired sub-event.
        self.idx = 0
        self.state = _BURST_IDLE
        self.closed = False
        self.last_when = -_INF

    def try_at(self, when: float) -> "Event | None":
        """Append a sub-event at absolute time ``when``; return it.

        Returns ``None`` when the burst cannot accept the sub-event --
        it is closed, or ``when`` precedes the current tail (bursts only
        tail-extend; an out-of-order time means the producer must close
        this burst and open a new one, or fall back to a plain post).
        The returned event is already triggered (like a ``Timeout``);
        attach callbacks to its ``callbacks`` list.
        """
        if self.closed or when < self.last_when:
            return None
        engine = self.engine
        ev = Event.__new__(Event)
        ev.engine = engine
        ev.callbacks = []
        ev._value = None
        ev._ok = True
        ev._defused = False
        seq = engine._seq
        engine._seq = seq + 1
        self.subs.append((when, seq, ev))
        self.last_when = when
        if self.state == _BURST_IDLE:
            engine._post_entry(when, seq, self)
            self.state = _BURST_QUEUED
        elif self.state == _BURST_RUNNING and when < engine._floor:
            # Appended behind a mid-retirement cursor with no next sub yet
            # recorded: expose it to elapse() so inline time advances
            # cannot jump past it.
            engine._floor = when
        return ev

    def close(self) -> None:
        """Refuse further sub-events; pending ones still retire normally."""
        self.closed = True

    @property
    def pending(self) -> int:
        """Number of appended sub-events not yet retired."""
        return len(self.subs) - self.idx

    def __repr__(self) -> str:
        state = ("idle", "queued", "running")[self.state]
        return (
            f"<Burst {state}{' closed' if self.closed else ''} "
            f"pending={self.pending} at {id(self):#x}>"
        )


class Engine:
    """Deterministic discrete-event engine.

    Events posted at equal times are processed in posting order (FIFO tie
    break via a monotonically increasing sequence number), which makes every
    simulation a pure function of its inputs.
    """

    def __init__(self) -> None:
        #: Current simulation time in seconds.
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        #: Calendar-queue store, engaged above CALENDAR_ENGAGE pending
        #: entries (exactly one of heap/calendar holds entries at a time).
        self._cal: CalendarQueue | None = None
        self._seq: int = 0
        #: Cancelled timeouts still awaiting lazy removal from the store.
        self._dead_pending: int = 0
        #: Number of events processed so far (useful for tests/diagnostics).
        self.processed_count: int = 0
        #: Simulation time when the last deadline-bounded run() stopped
        #: dispatching (before the clamp to the deadline itself).
        self.dispatch_tail: float = 0.0
        #: Largest pending-event population ever reached.
        self.heap_high_water: int = 0
        #: Total timeouts withdrawn via :meth:`Timeout.cancel`.
        self.cancelled_count: int = 0
        #: Total :class:`Burst` macro-events created.
        self.bursts_opened: int = 0
        #: Times a burst yielded its remainder back to the pending store.
        self.burst_reinserts: int = 0
        #: Heap-to-calendar migrations (population crossed CALENDAR_ENGAGE).
        self.calendar_engagements: int = 0
        #: Key floor for :meth:`elapse` while a burst is mid-retirement:
        #: the next sub-event's time (those subs are not in the store, so
        #: the store minimum alone would over-approve inline advances).
        self._floor: float = _INF
        #: Depth of multi-callback dispatches in progress.  While an event
        #: with several callbacks is being dispatched, :meth:`elapse` must
        #: not advance time inline -- the remaining callbacks still have to
        #: run at the current instant.
        self._multi_cb: int = 0
        #: Inline advances may not cross the active ``run(until=...)``
        #: boundary; -inf disables them entirely (event-bounded runs).
        self._until: float = _INF
        #: Optional host-time span tracer (attach_tracer); sampled so the
        #: per-event hot loops never see it.
        self._tracer: "typing.Any | None" = None
        self._trace_sample_every: int = 64
        self._trace_burst_n: int = 0

    def attach_metrics(
        self,
        metrics: "MetricsRegistry",
        labels: "dict[str, str] | None" = None,
    ) -> None:
        """Register engine health metrics (all sampled: no run-loop cost).

        The sim-time advance rate (simulated seconds per host second) is
        anchored at attach time, so scrape it from the registry that was
        attached before :meth:`run`.
        """
        host_t0 = time.perf_counter()
        metrics.sampled_counter(
            "repro_engine_events_processed", lambda: self.processed_count,
            "Simulation events popped and dispatched", labels)
        metrics.sampled_gauge(
            "repro_engine_heap_size", lambda: self.pending_count,
            "Pending simulation events", labels)
        metrics.sampled_gauge(
            "repro_engine_heap_hiwater", lambda: self.heap_high_water,
            "Largest pending-event population ever reached", labels)
        metrics.sampled_gauge(
            "repro_engine_sim_time_seconds", lambda: self.now,
            "Current simulation clock", labels)
        metrics.sampled_gauge(
            "repro_engine_sim_seconds_per_host_second",
            lambda: self.now / max(time.perf_counter() - host_t0, 1e-9),
            "Simulated-time advance rate since metrics were attached",
            labels)
        metrics.sampled_counter(
            "repro_engine_timeouts_cancelled", lambda: self.cancelled_count,
            "Timeouts withdrawn before firing", labels)
        metrics.sampled_counter(
            "repro_engine_bursts_opened", lambda: self.bursts_opened,
            "Macro-event bursts created by the network fast path", labels)
        metrics.sampled_counter(
            "repro_engine_burst_reinserts", lambda: self.burst_reinserts,
            "Burst remainders yielded back to the pending store", labels)
        metrics.sampled_gauge(
            "repro_engine_calendar_active",
            lambda: 1.0 if self._cal is not None else 0.0,
            "Whether the calendar-queue store is currently engaged", labels)

    def attach_tracer(self, tracer: "typing.Any",
                      sample_every: int = 64) -> None:
        """Record sampled ``engine.burst`` host-time spans on ``tracer``.

        Only burst retirement (a macro-event covering many sub-events) is
        instrumented, and only every ``sample_every``-th retirement, so
        the per-event dispatch loops stay untouched and measured tracing
        overhead stays well under the 5% budget.
        """
        self._tracer = tracer
        self._trace_sample_every = max(1, sample_every)
        self._trace_burst_n = 0

    # -- scheduling -------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of pending entries (macro-events count once)."""
        cal = self._cal
        return len(self._heap) + (cal.n if cal is not None else 0)

    def _post(self, event: Event, delay: float = 0.0) -> None:
        """Schedule a triggered event for processing ``delay`` from now.

        Body duplicates :meth:`_post_entry` (minus the caller-allocated
        sequence number): this is the single hottest call in the kernel,
        and the extra frame showed up in profiles.
        """
        seq = self._seq
        self._seq = seq + 1
        cal = self._cal
        if cal is not None:
            cal.push(self.now + delay, seq, event)
            if cal.n > self.heap_high_water:
                self.heap_high_water = cal.n
            return
        heap = self._heap
        heapq.heappush(heap, (self.now + delay, seq, event))
        n = len(heap)
        if n > self.heap_high_water:
            self.heap_high_water = n
        if n > CALENDAR_ENGAGE:
            self._cal = CalendarQueue(heap)
            self.calendar_engagements += 1
            del heap[:]

    def _post_entry(self, when: float, seq: int, item: object) -> None:
        """Insert an entry with a caller-allocated sequence number."""
        cal = self._cal
        if cal is not None:
            cal.push(when, seq, item)
            if cal.n > self.heap_high_water:
                self.heap_high_water = cal.n
            return
        heap = self._heap
        heapq.heappush(heap, (when, seq, item))
        n = len(heap)
        if n > self.heap_high_water:
            self.heap_high_water = n
        if n > CALENDAR_ENGAGE:
            # Migrate into a calendar queue sized/paced from the current
            # population.  The heap *list object* is kept (run() holds a
            # local alias) but emptied, which is what flips active loops
            # over to the calendar path.
            self._cal = CalendarQueue(heap)
            self.calendar_engagements += 1
            del heap[:]

    def post_at(self, when: float, value: object = None) -> Event:
        """Schedule a fresh already-triggered event at absolute time ``when``.

        The workhorse of analytically-timed layers (the NIC): unlike
        :meth:`timeout`, the completion time is passed absolutely, so the
        float stored in the schedule is exactly ``when`` with no
        ``now + (when - now)`` round-trip.  Attach callbacks to the
        returned event's ``callbacks`` list.
        """
        if when < self.now:
            raise SimulationError(
                f"post_at({when!r}) is in the past (now={self.now!r})"
            )
        ev = Event.__new__(Event)
        ev.engine = self
        ev.callbacks = []
        ev._value = value
        ev._ok = True
        ev._defused = False
        seq = self._seq
        self._seq = seq + 1
        self._post_entry(when, seq, ev)
        return ev

    def reserve_low_keys(self, bound: int) -> None:
        """Reserve sequence numbers below ``bound`` for external injection.

        The engine's own allocator jumps to ``bound``, so every internally
        posted event sorts *after* any entry inserted via
        :meth:`post_keyed` with a key below ``bound`` at the same time.
        The channel-delivery fabric uses this to give cross-NIC messages a
        partition-invariant total order (see :mod:`repro.netsim.channel`).
        """
        if self._seq > bound:
            raise SimulationError(
                "reserve_low_keys() must run before any event is posted"
            )
        self._seq = bound

    def post_keyed(self, when: float, key: int, value: object = None) -> Event:
        """Schedule an event at ``when`` with a caller-allocated tie-break.

        Like :meth:`post_at` but the caller supplies the sequence key
        instead of drawing from the engine's counter, so the position of
        the event among equal-time entries is a pure function of ``key`` --
        independent of how many events this engine happened to allocate
        before.  Keys must be unique; reserving a band with
        :meth:`reserve_low_keys` keeps them disjoint from internal ones.
        """
        if when < self.now:
            raise SimulationError(
                f"post_keyed({when!r}) is in the past (now={self.now!r})"
            )
        ev = Event.__new__(Event)
        ev.engine = self
        ev.callbacks = []
        ev._value = value
        ev._ok = True
        ev._defused = False
        self._post_entry(when, key, ev)
        return ev

    def new_burst(self) -> Burst:
        """Open a :class:`Burst` macro-event for tail-appended sub-events."""
        self.bursts_opened += 1
        return Burst(self)

    def _cancel(self, event: Event) -> bool:
        """Withdraw a pending timeout (see :meth:`Timeout.cancel`).

        Marks the event dead by clearing ``callbacks`` -- the run loop
        discards dead entries when popped -- and bulk-compacts the store
        once dead entries are a majority, bounding the pending population
        of cancel-heavy workloads.  Note :attr:`peek` may report the time
        of a dead entry until it is discarded.
        """
        if event.callbacks is None:
            return False  # already fired (or already cancelled)
        event.callbacks = None
        self.cancelled_count += 1
        dead = self._dead_pending = self._dead_pending + 1
        if dead >= 64 and dead * 2 >= self.pending_count:
            self._compact()
        return True

    def _dispatch_multi(self, callbacks: list, event: Event) -> None:
        """Dispatch an event with several callbacks.

        Split out of the run loops (which inline the one-callback fast
        path) so the ``_multi_cb`` guard -- which keeps :meth:`elapse`
        from advancing time while sibling callbacks still owe work at the
        current instant -- costs nothing on the dominant case.
        """
        self._multi_cb += 1
        try:
            for cb in callbacks:
                cb(event)
        finally:
            self._multi_cb -= 1

    def _compact(self) -> None:
        """Physically remove dead (cancelled) entries from the store."""
        is_dead = lambda item: (  # noqa: E731 - tight closure, used twice
            item.callbacks is None and item.__class__ is not Burst
        )
        cal = self._cal
        if cal is not None:
            cal.compact(is_dead)
        else:
            heap = self._heap
            live = [e for e in heap if not is_dead(e[2])]
            if len(live) != len(heap):
                heap[:] = live
                heapq.heapify(heap)
        self._dead_pending = 0

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def elapse(self, delay: float) -> "Timeout | None":
        """Advance time by ``delay`` inline when provably equivalent.

        The caller's idiom is::

            t = engine.elapse(dt)
            if t is not None:
                yield t

        A process yielding ``timeout(dt)`` suspends, the timeout is pushed,
        popped as the next event, and the process resumes -- a full
        scheduler round-trip to do nothing but set ``now``.  When the
        timeout would provably be the very next event dispatched (its key
        ``(now + dt, next_seq)`` is strictly smaller than every pending
        entry, no other callbacks of the current dispatch remain, and the
        deadline is not crossed), this advances ``now`` directly and
        returns ``None`` so the caller never suspends.  One sequence
        number and one processed-count tick are consumed exactly as the
        elided timeout would have, keeping event ordering, FIFO
        tie-breaks, and engine metrics bit-identical to the unelided
        schedule.  Otherwise a plain :class:`Timeout` is returned.
        """
        target = self.now + delay
        if delay > 0.0 and self._multi_cb == 0 \
                and target < self._floor and target <= self._until:
            cal = self._cal
            if cal is not None:
                mk = cal.min_key()
                if mk is None or target < mk[0]:
                    self._seq += 1
                    self.now = target
                    self.processed_count += 1
                    return None
            else:
                heap = self._heap
                if not heap or target < heap[0][0]:
                    self._seq += 1
                    self.now = target
                    self.processed_count += 1
                    return None
        return Timeout(self, delay)

    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def process(self, generator: typing.Generator) -> "Process":
        """Spawn a :class:`Process` driving ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- run loop ---------------------------------------------------------
    @property
    def peek(self) -> float:
        """Time of the next scheduled entry, or ``inf`` if none.

        Lazy deletion caveat: a cancelled-but-not-yet-discarded timeout at
        the head makes this report a time at which nothing will fire.
        """
        cal = self._cal
        if cal is not None and cal.n:
            return cal.min_key()[0]  # type: ignore[index]
        return self._heap[0][0] if self._heap else _INF

    def live_peek(self) -> float:
        """Time of the next *live* entry, or ``inf`` when drained.

        Unlike :attr:`peek`, discards cancelled-but-undiscarded timeouts
        off the head of the store first, so the reported time is one at
        which something will actually fire.  Sharded workers
        (:mod:`repro.sim.parallel`) rely on this: a stale dead-head time
        would freeze the conservative fence below the shard's own window
        and stall the whole run.
        """
        cal = self._cal
        if cal is not None:
            while cal.n:
                when, seq, ev = cal.pop()
                if ev.callbacks is None and ev.__class__ is not Burst:
                    self._dead_pending -= 1
                    continue
                cal.push(when, seq, ev)
                return when
            return _INF
        heap = self._heap
        while heap:
            ev = heap[0][2]
            if ev.callbacks is None and ev.__class__ is not Burst:
                heapq.heappop(heap)
                self._dead_pending -= 1
                continue
            return heap[0][0]
        return _INF

    def _retire_burst(
        self,
        burst: Burst,
        stop_event: "Event | None",
        deadline: float,
    ) -> int:
        """Retire a popped burst's sub-events in exact global order.

        Each sub-event is dispatched only while its ``(when, seq)`` key is
        the global minimum; at the first competing smaller key -- or a
        deadline/stop-event boundary -- the remainder is re-inserted into
        the pending store keyed at the next sub-event, exactly where the
        equivalent individually-posted events would sit.  Returns 0 to
        continue the run loop (the loop's own head check handles the
        deadline), 2 when ``stop_event`` fired.
        """
        burst.state = _BURST_RUNNING
        subs = burst.subs
        heap = self._heap  # stable list object; emptied if calendar engages
        i = burst.idx
        processed = 0
        status = 0
        tracer = self._tracer
        sp_t0 = -1.0
        if tracer is not None:
            self._trace_burst_n += 1
            if self._trace_burst_n >= self._trace_sample_every:
                self._trace_burst_n = 0
                sp_t0 = tracer.now()
        try:
            # len(subs) is re-read every iteration: callbacks may append to
            # this very burst while it runs.
            while i < len(subs):
                when, seq, event = subs[i]
                if stop_event is not None and stop_event.callbacks is None:
                    status = 2
                    break
                if when > deadline:
                    # Not the run's deadline exit: other store entries may
                    # still be due before the deadline.  Re-insert (via the
                    # finally block) and let the run loop's head check
                    # decide when the window is really over.
                    break
                # Yield to any competing pending entry with a smaller key.
                cal = self._cal
                if cal is not None:
                    mk = cal.min_key()
                    if mk is not None and (
                        mk[0] < when or (mk[0] == when and mk[1] < seq)
                    ):
                        break
                elif heap:
                    head = heap[0]
                    hw = head[0]
                    if hw < when or (hw == when and head[1] < seq):
                        break
                callbacks = event.callbacks
                event.callbacks = None
                self.now = when
                # Sub-events i+1.. are not in the pending store while the
                # burst retires, so elapse() needs an explicit floor (kept
                # current by try_at for mid-callback appends).
                self._floor = subs[i + 1][0] if i + 1 < len(subs) else _INF
                if len(callbacks) == 1:  # type: ignore[arg-type]
                    callbacks[0](event)  # type: ignore[index]
                else:
                    self._dispatch_multi(callbacks, event)  # type: ignore[arg-type]
                processed += 1
                i += 1
                if not event._ok and not event._defused:
                    raise typing.cast(BaseException, event._value)
        finally:
            self._floor = _INF
            self.processed_count += processed
            if i < len(subs):
                if i > 256:  # trim the retired prefix so long flows stay O(live)
                    del subs[:i]
                    i = 0
                burst.idx = i
                nwhen, nseq, _ev = subs[i]
                self._post_entry(nwhen, nseq, burst)
                burst.state = _BURST_QUEUED
                self.burst_reinserts += 1
            else:
                del subs[:]
                burst.idx = 0
                burst.state = _BURST_IDLE
            if sp_t0 >= 0.0:
                tracer.add_span("burst", "engine.burst", sp_t0, tracer.now(),
                                {"subs": processed,
                                 "every": self._trace_sample_every})
        return status

    def step(self) -> None:
        """Process one (sub-)event; raises :class:`EmptySchedule` when idle."""
        while True:
            cal = self._cal
            if cal is not None and cal.n:
                when, _seq, event = cal.pop()
                if cal.n < CALENDAR_COLLAPSE:
                    self._heap.extend(cal.drain())
                    heapq.heapify(self._heap)
                    self._cal = None
            else:
                self._cal = None
                if not self._heap:
                    raise EmptySchedule("no more events scheduled")
                when, _seq, event = heapq.heappop(self._heap)
            callbacks = event.callbacks
            if callbacks is None:
                if event.__class__ is Burst:
                    self._step_burst(event)
                    return
                if self._dead_pending:  # cancelled timeout: discard
                    self._dead_pending -= 1
                continue
            event.callbacks = None
            self.now = when
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                self._dispatch_multi(callbacks, event)
            self.processed_count += 1
            if not event._ok and not event._defused:
                raise typing.cast(BaseException, event._value)
            return

    def _step_burst(self, burst: Burst) -> None:
        """step() helper: retire exactly one sub-event of a popped burst."""
        subs = burst.subs
        i = burst.idx
        when, _seq, event = subs[i]
        callbacks = event.callbacks
        event.callbacks = None
        self.now = when
        i += 1
        if i < len(subs):
            burst.idx = i
            nwhen, nseq, _ev = subs[i]
            self._post_entry(nwhen, nseq, burst)
            burst.state = _BURST_QUEUED
        else:
            del subs[:]
            burst.idx = 0
            burst.state = _BURST_IDLE
        if len(callbacks) == 1:  # type: ignore[arg-type]
            callbacks[0](event)  # type: ignore[index]
        else:
            self._dispatch_multi(callbacks, event)  # type: ignore[arg-type]
        self.processed_count += 1
        if not event._ok and not event._defused:
            raise typing.cast(BaseException, event._value)

    def run_guarded(
        self,
        max_sim_time: "float | None" = None,
        stall_sim_time: "float | None" = None,
        check_interval: "float | None" = None,
        progress: "typing.Callable[[], object] | None" = None,
    ) -> "str | None":
        """Run with giving-up guards; never hangs a wedged simulation.

        Steps the clock in ``check_interval`` chunks (default: a quarter of
        the tightest guard) via ``run(until=...)`` and between chunks
        checks two guards:

        * ``max_sim_time`` -- total simulated seconds this call may cover;
        * ``stall_sim_time`` -- give up when the *progress token* stays
          flat for that much simulated time.  ``progress`` supplies the
          token (any comparable value -- e.g. events stamped + packets
          delivered); without it the engine's ``processed_count`` is used,
          which detects dead clocks but not live-locks that churn events
          (retransmission storms), so callers that can should pass a
          token measuring useful work.

        Returns ``None`` when the store drained (normal completion),
        ``"max_sim_time"`` or ``"stalled"`` when a guard fired -- the
        caller decides what to do (dump diagnostics, harvest partial
        reports).  Timestamps of everything dispatched are bit-identical
        to a plain ``run()`` of the same schedule; the only difference is
        that ``now`` lands on the last chunk boundary instead of the final
        event time.
        """
        if max_sim_time is None and stall_sim_time is None:
            raise SimulationError("run_guarded needs max_sim_time or stall_sim_time")
        guards = [g for g in (max_sim_time, stall_sim_time) if g is not None]
        check = check_interval if check_interval is not None else min(guards) / 4.0
        if check <= 0.0:
            raise SimulationError(f"check interval must be positive, got {check!r}")
        deadline = self.now + max_sim_time if max_sim_time is not None else _INF
        token = progress() if progress is not None else self.processed_count
        anchor = self.now
        while True:
            if self.pending_count - self._dead_pending <= 0:
                return None  # drained before the chunk started
            self.run(until=min(self.now + check, deadline))
            if self.pending_count - self._dead_pending <= 0:
                return None
            if self.now >= deadline:
                return "max_sim_time"
            current = progress() if progress is not None else self.processed_count
            if current != token:
                token = current
                anchor = self.now
            elif stall_sim_time is not None and self.now - anchor >= stall_sim_time:
                return "stalled"

    def run(self, until: "float | Event | None" = None) -> object:
        """Run until the store drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain), a number (absolute simulation
        time), or an :class:`Event` (run until it is processed; returns its
        value).

        The event loop is inlined here rather than delegating to
        :meth:`step`: dispatching one event is a handful of operations, so
        per-event call/property overhead dominated the kernel profile.  The
        drain case (no deadline, no stop event -- what ``run_app`` uses)
        additionally skips the head-of-store checks entirely.  The outer
        loop exists only to switch between the heap and calendar stores,
        which happens at most a handful of times per run.
        """
        stop_event: Event | None = None
        deadline = _INF
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self.now:
                raise SimulationError(
                    f"until={deadline!r} is in the past (now={self.now!r})"
                )

        heap = self._heap
        heappop = heapq.heappop
        heapify = heapq.heapify
        drain_only = stop_event is None and deadline == _INF
        processed = 0
        stopped = False
        # The loop allocates thousands of short-lived events per simulated
        # millisecond; almost all die by refcount, but the process/event
        # back-references form cycles, and generation-0 collections during
        # the loop cost >10% of wall clock.  Suspend cyclic GC for the
        # duration -- acyclic garbage is still freed immediately, and the
        # cyclic remainder is collected at normal thresholds once the run
        # returns.  (Restored in the ``finally`` even if a callback raised;
        # nested/reentrant runs keep it suspended until the outermost one
        # exits.)
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        # elapse() must not advance time past a float deadline; an
        # event-bounded run disables it outright (the stop event may fire
        # mid-dispatch, and inline advances skip the loop's stop check).
        prev_until = self._until
        self._until = -_INF if stop_event is not None else deadline
        try:
            while True:
                cal = self._cal
                if cal is not None:
                    # -- calendar-store loop (large pending populations) --
                    while cal.n:
                        if cal.n < CALENDAR_COLLAPSE:
                            heap.extend(cal.drain())
                            heapify(heap)
                            self._cal = None
                            break
                        if not drain_only:
                            if (
                                stop_event is not None
                                and stop_event.callbacks is None
                            ):
                                stopped = True
                                break
                            mk = cal.min_key()
                            if mk is not None and mk[0] > deadline:
                                self.dispatch_tail = self.now
                                self.now = deadline
                                return None
                        when, _seq, event = cal.pop()
                        callbacks = event.callbacks
                        if callbacks is None:
                            if event.__class__ is Burst:
                                status = self._retire_burst(
                                    event, stop_event, deadline)
                                if status == 2:
                                    stopped = True
                                    break
                            elif self._dead_pending:
                                self._dead_pending -= 1
                            continue
                        event.callbacks = None
                        self.now = when
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            self._dispatch_multi(callbacks, event)
                        processed += 1
                        if not event._ok and not event._defused:
                            raise typing.cast(BaseException, event._value)
                    else:
                        self._cal = None  # drained empty
                elif drain_only:
                    # -- heap drain loop: no per-event boundary checks --
                    while heap:
                        # Fast path: the head is the only runnable event, so
                        # it can be popped directly without going through
                        # heapq.
                        if len(heap) == 1:
                            when, _seq, event = heap.pop()
                        else:
                            when, _seq, event = heappop(heap)
                        callbacks = event.callbacks
                        if callbacks is None:
                            if event.__class__ is Burst:
                                subs = event.subs
                                if len(subs) - event.idx == 1:
                                    # Single-sub burst: the popped entry's
                                    # key IS the sub's key, so it is the
                                    # global minimum and retires with no
                                    # competing-entry check (the dominant
                                    # case when flows interleave tightly).
                                    when, _seq, sub = subs[event.idx]
                                    del subs[:]
                                    event.idx = 0
                                    event.state = 0  # _BURST_IDLE
                                    callbacks = sub.callbacks
                                    sub.callbacks = None
                                    self.now = when
                                    if len(callbacks) == 1:  # type: ignore[arg-type]
                                        callbacks[0](sub)  # type: ignore[index]
                                    else:
                                        self._dispatch_multi(
                                            callbacks, sub)  # type: ignore[arg-type]
                                    processed += 1
                                    if not sub._ok and not sub._defused:
                                        raise typing.cast(
                                            BaseException, sub._value)
                                else:
                                    self._retire_burst(event, None, _INF)
                            elif self._dead_pending:
                                self._dead_pending -= 1
                            continue
                        event.callbacks = None
                        self.now = when
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            self._dispatch_multi(callbacks, event)
                        processed += 1
                        if not event._ok and not event._defused:
                            raise typing.cast(BaseException, event._value)
                else:
                    # -- heap loop with stop-event/deadline checks --
                    while heap:
                        if (
                            stop_event is not None
                            and stop_event.callbacks is None
                        ):
                            stopped = True
                            break
                        if heap[0][0] > deadline:
                            self.dispatch_tail = self.now
                            self.now = deadline
                            return None
                        if len(heap) == 1:
                            when, _seq, event = heap.pop()
                        else:
                            when, _seq, event = heappop(heap)
                        callbacks = event.callbacks
                        if callbacks is None:
                            if event.__class__ is Burst:
                                status = self._retire_burst(
                                    event, stop_event, deadline)
                                if status == 2:
                                    stopped = True
                                    break
                            elif self._dead_pending:
                                self._dead_pending -= 1
                            continue
                        event.callbacks = None
                        self.now = when
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            self._dispatch_multi(callbacks, event)
                        processed += 1
                        if not event._ok and not event._defused:
                            raise typing.cast(BaseException, event._value)
                if stopped:
                    break
                cal = self._cal
                if heap or (cal is not None and cal.n):
                    continue  # the store migrated mid-loop; keep going
                break
        finally:
            if gc_was_enabled:
                gc.enable()
            self._until = prev_until
            self.processed_count += processed

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "run() ran out of events before the awaited event fired "
                    "(deadlock in the simulated program?)"
                )
            if not stop_event.ok:
                raise typing.cast(BaseException, stop_event.value)
            return stop_event.value
        if deadline != _INF:
            # Remember where dispatching actually stopped before clamping
            # to the deadline: a window-bounded driver (repro.sim.parallel)
            # needs the true tail to finalize at the same instant a drain
            # run would have.
            self.dispatch_tail = self.now
            self.now = deadline
        return None


class EmptySchedule(SimulationError):
    """Raised by :meth:`Engine.step` when nothing is scheduled."""
