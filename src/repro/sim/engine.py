"""The simulation engine: clock + event heap + run loop."""

from __future__ import annotations

import heapq
import time
import typing

from repro.sim.events import Event, SimulationError, Timeout

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.metrics import MetricsRegistry
    from repro.sim.process import Process


class Engine:
    """Deterministic discrete-event engine.

    Events posted at equal times are processed in posting order (FIFO tie
    break via a monotonically increasing sequence number), which makes every
    simulation a pure function of its inputs.
    """

    def __init__(self) -> None:
        #: Current simulation time in seconds.
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        #: Number of events processed so far (useful for tests/diagnostics).
        self.processed_count: int = 0
        #: Largest pending-event heap ever reached.
        self.heap_high_water: int = 0

    def attach_metrics(
        self,
        metrics: "MetricsRegistry",
        labels: "dict[str, str] | None" = None,
    ) -> None:
        """Register engine health metrics (all sampled: no run-loop cost).

        The sim-time advance rate (simulated seconds per host second) is
        anchored at attach time, so scrape it from the registry that was
        attached before :meth:`run`.
        """
        host_t0 = time.perf_counter()
        metrics.sampled_counter(
            "repro_engine_events_processed", lambda: self.processed_count,
            "Simulation events popped and dispatched", labels)
        metrics.sampled_gauge(
            "repro_engine_heap_size", lambda: len(self._heap),
            "Pending simulation events", labels)
        metrics.sampled_gauge(
            "repro_engine_heap_hiwater", lambda: self.heap_high_water,
            "Largest pending-event heap ever reached", labels)
        metrics.sampled_gauge(
            "repro_engine_sim_time_seconds", lambda: self.now,
            "Current simulation clock", labels)
        metrics.sampled_gauge(
            "repro_engine_sim_seconds_per_host_second",
            lambda: self.now / max(time.perf_counter() - host_t0, 1e-9),
            "Simulated-time advance rate since metrics were attached",
            labels)

    # -- scheduling -------------------------------------------------------
    def _post(self, event: Event, delay: float = 0.0) -> None:
        """Schedule a triggered event for processing ``delay`` from now."""
        heap = self._heap
        heapq.heappush(heap, (self.now + delay, self._seq, event))
        self._seq += 1
        if len(heap) > self.heap_high_water:
            self.heap_high_water = len(heap)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def process(self, generator: typing.Generator) -> "Process":
        """Spawn a :class:`Process` driving ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- run loop ---------------------------------------------------------
    @property
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process one event; raises :class:`EmptySchedule` when idle."""
        if not self._heap:
            raise EmptySchedule("no more events scheduled")
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None
        for cb in callbacks:
            cb(event)
        self.processed_count += 1
        if not event._ok and not event._defused:
            raise typing.cast(BaseException, event._value)

    def run(self, until: "float | Event | None" = None) -> object:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain), a number (absolute simulation
        time), or an :class:`Event` (run until it is processed; returns its
        value).

        The event loop is inlined here rather than delegating to
        :meth:`step`: dispatching one event is a handful of operations, so
        per-event call/property overhead dominated the kernel profile.  The
        drain case (no deadline, no stop event -- what ``run_app`` uses)
        additionally skips the head-of-heap checks entirely.
        """
        stop_event: Event | None = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            deadline = float(until)
            if deadline < self.now:
                raise SimulationError(
                    f"until={deadline!r} is in the past (now={self.now!r})"
                )

        heap = self._heap
        heappop = heapq.heappop
        drain_only = stop_event is None and deadline == float("inf")
        processed = 0
        try:
            while heap:
                if not drain_only:
                    if stop_event is not None and stop_event.callbacks is None:
                        break
                    if heap[0][0] > deadline:
                        self.now = deadline
                        return None
                # Fast path: the head is the only runnable event, so it can
                # be popped directly without going through heapq.
                if len(heap) == 1:
                    when, _seq, event = heap.pop()
                else:
                    when, _seq, event = heappop(heap)
                self.now = when
                callbacks = event.callbacks
                event.callbacks = None
                assert callbacks is not None
                for cb in callbacks:
                    cb(event)
                processed += 1
                if not event._ok and not event._defused:
                    raise typing.cast(BaseException, event._value)
        finally:
            self.processed_count += processed

        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError(
                    "run() ran out of events before the awaited event fired "
                    "(deadlock in the simulated program?)"
                )
            if not stop_event.ok:
                raise typing.cast(BaseException, stop_event.value)
            return stop_event.value
        if deadline != float("inf"):
            self.now = deadline
        return None


class EmptySchedule(SimulationError):
    """Raised by :meth:`Engine.step` when nothing is scheduled."""
