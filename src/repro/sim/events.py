"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence.  It starts *untriggered*; calling
:meth:`Event.succeed` or :meth:`Event.fail` schedules it for processing at the
current simulation time, at which point the engine invokes its callbacks (in
registration order).  Processes suspend on events by ``yield``-ing them.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (double-trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`repro.sim.process.Process.interrupt`."""

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that callbacks and processes can wait on.

    Parameters
    ----------
    engine:
        The owning :class:`~repro.sim.engine.Engine`.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        #: Callables ``cb(event)`` invoked when the event is processed.
        #: ``None`` once processed (late callbacks are a bug we surface).
        self.callbacks: list[typing.Callable[["Event"], None]] | None = []
        self._value: object = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful when triggered)."""
        return self._ok

    @property
    def value(self) -> object:
        """The event's value; raises if the event is still pending."""
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.engine._post(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception that waiters will receive."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.engine._post(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome onto this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event._defused = True
            self.fail(typing.cast(BaseException, event._value))

    def __repr__(self) -> str:
        state = (
            "pending"
            if self._value is _PENDING
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: object = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        # Event.__init__ is inlined: timeouts are the simulator's most
        # frequently allocated object, and the extra super() dispatch showed
        # up in kernel profiles.
        self.engine = engine
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self.delay = delay
        engine._post(self, delay=delay)

    def cancel(self) -> bool:
        """Withdraw this timeout before it fires.

        A cancelled timeout never runs its callbacks and does not count as
        a processed event.  The engine removes it from the pending store
        lazily (skipped when popped; bulk-compacted when cancellations
        accumulate), so cancelling is O(1) and a wait-heavy workload that
        abandons guard timeouts keeps a bounded pending population.

        Returns True if the timeout was withdrawn, False if it already
        fired (or was already cancelled).  The caller is responsible for
        detaching any waiters first -- cancelling a timeout that a process
        or condition still sleeps on would strand it.
        """
        return self.engine._cancel(self)


class _Condition(Event):
    """Base for AnyOf / AllOf: fires once ``_check`` is satisfied."""

    __slots__ = ("events", "_count")

    def __init__(self, engine: "Engine", events: typing.Iterable[Event]) -> None:
        super().__init__(engine)
        self.events = tuple(events)
        self._count = 0
        for ev in self.events:
            if ev.engine is not engine:
                raise SimulationError("condition mixes events from different engines")
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            # Note: a Timeout is "triggered" (has a value) from creation, so
            # readiness here is keyed on *processed*; pending events get a
            # callback that fires when the engine processes them.
            if ev.processed:
                self._observe(ev)
            else:
                ev.callbacks.append(self._observe)  # type: ignore[union-attr]
        if self.triggered:
            self._release_pending()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(typing.cast(BaseException, event._value))
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())
            self._release_pending()

    def _release_pending(self) -> None:
        """Withdraw guard timeouts the settled condition was sole waiter of.

        The classic ``AnyOf(work, timeout)`` guard pattern would otherwise
        leave one dead timeout in the engine's pending store per wait until
        its deadline pops.  Only :class:`Timeout` constituents are touched
        (they cannot fail, so dropping the observer loses no defusing);
        other events keep their observer so late failures stay defused.
        """
        observe = self._observe
        for ev in self.events:
            cbs = ev.callbacks
            if cbs is not None and isinstance(ev, Timeout):
                try:
                    cbs.remove(observe)
                except ValueError:
                    continue
                if not cbs:
                    ev.cancel()

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict[Event, object]:
        # Keyed on *processed*: Timeouts carry a value from creation, but only
        # events the engine has fired belong in the condition's result.
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}


class AnyOf(_Condition):
    """Fires as soon as any constituent event succeeds (or one fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(_Condition):
    """Fires once every constituent event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)
