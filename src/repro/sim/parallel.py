"""Sharded parallel-DES engine: conservative-lookahead rank partitioning.

One Python process retiring every event caps the rank counts the
framework can characterize.  This module splits a run across *shards*:
each shard is a worker process owning a contiguous (or topology-derived)
set of ranks with its own :class:`~repro.sim.engine.Engine` and
:class:`~repro.netsim.fabric.Fabric`; cross-shard NIC effects travel as
explicit :class:`~repro.netsim.channel.ChannelMsg` records through the
coordinator (the ``ShardLink`` boundary replacing direct NIC-to-NIC
delivery).

Synchronization is conservative.  Let ``LA = lookahead(params)`` -- the
minimum wire delay any channel message can have between its generation
and its effect (per-message overhead plus jitter-reduced latency, or the
RDMA-read request latency, whichever is smaller).  If every shard has
executed up to ``T`` and the earliest pending event anywhere is
``T_min``, then no message generated from here on can take effect before
``T_min + LA`` -- so every shard may safely run to that *fence*.  Two
protocols expose this bound:

* ``sync="window"``: global barrier rounds.  Each round computes
  ``T_min`` over all shards (and in-flight messages), grants every shard
  a window ``[now, fence)``, collects generated messages, repeats.
  Because ``T_min`` is the true next event time, idle gaps are skipped in
  one hop (time windows never creep through empty regions).
* ``sync="null"``: the same bound, granted asynchronously -- shards are
  re-armed the moment their fence improves, without waiting for the
  slowest shard each round (a parent-mediated variant of null-message
  pacing).  Results are identical; only scheduling differs.

One message class undercuts ``LA``: an RDMA-write placement ACK takes
effect only ``wire_time(nbytes)`` after the placement event that emits
it.  Every cross-shard ``PLACE`` therefore registers an *obligation* with
horizon ``place_when + wire_time(nbytes)`` -- a lower bound on the ACK's
effect time known when the write is posted -- and the writer's shard
fence never passes an outstanding horizon.  The obligation retires when
the ACK routes back (fault degradation/stalls only push arrivals later;
factors are validated >= 1).

Determinism: a sharded run is bit-identical to a single-process run with
``delivery="channel"`` on the same seed -- same event times, same report
bytes -- because (a) all cross-rank interaction flows through channel
messages whose ``(when, key)`` is a pure per-link function, (b) channel
keys sort below every engine-allocated key at equal times, and (c)
same-time app-band events on different ranks touch disjoint state.  The
differential harness (:func:`repro.netsim.differential.run_sharded_pair`)
is the referee.

Not supported with ``shards``: telemetry, metrics registries, watchdogs
(all assume one engine) and the ARMCI runtime (shared region directory).
"""

from __future__ import annotations

import array
import dataclasses
import heapq
import math
import multiprocessing
import random
import time
import typing

from repro.netsim import channel as _ch
from repro.netsim import wire as _wire
from repro.netsim.params import NetworkParams

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.mpisim.config import MpiConfig
    from repro.runtime.launcher import RunResult

_INF = float("inf")


class ShardError(RuntimeError):
    """Sharded-run failure: worker crash, protocol violation, or stall."""


class ShardHostLost(ShardError):
    """A socket shard worker died or went silent mid-run.

    Raised by the coordinator within ``host_timeout`` of the last frame
    from the lost worker (heartbeats count as frames), so the run
    terminates cleanly inside the configured deadline instead of hanging
    the fence.  :func:`run_app_sharded` attaches ``diagnostic`` (a
    :class:`ShardLossDiagnostic` snapshot) and ``partial`` (a progress
    dict usable as a partial report) before the exception escapes.

    ``retryable`` is the service layer's cue to re-dispatch the job once:
    sharded runs are idempotent (same seed, same bits) and failed cells
    are never cached, so a retry against healthy hosts is safe.
    """

    retryable = True

    def __init__(self, message: str, reason: str = "", shard: int = -1,
                 host: str = "") -> None:
        super().__init__(message)
        #: ``"connection-lost"`` (EOF/reset) or ``"heartbeat-timeout"``
        #: (silence past ``host_timeout``).
        self.reason = reason
        self.shard = shard
        self.host = host
        self.diagnostic: "ShardLossDiagnostic | None" = None
        self.partial: "dict | None" = None


@dataclasses.dataclass
class ShardLossDiagnostic:
    """Watchdog-style snapshot of coordinator state at host loss.

    The sharded sibling of :class:`repro.faults.WatchdogDiagnostic`:
    where that one freezes a wedged single engine, this freezes the
    coordinator's view of every shard -- who was lost and why, how far
    simulated time got, and per-shard progress/liveness counters -- so a
    lost host in a long multi-host run leaves evidence instead of a
    stack trace ending at a socket read.
    """

    reason: str
    shard: int
    host: str
    detail: str
    sim_time: float
    rounds: int
    messages: int
    outstanding_obligations: int
    #: Per-shard dicts: shard, host, next_event, fence, events, busy_s,
    #: heartbeats, frames_in, frames_out, lost.
    shards: list

    def partial_report(self) -> dict:
        """Progress facts salvaged from the run, JSON-ready."""
        return {
            "reason": self.reason,
            "lost_shard": self.shard,
            "lost_host": self.host,
            "sim_time": self.sim_time,
            "rounds": self.rounds,
            "messages": self.messages,
            "events": sum(s["events"] for s in self.shards),
            "shards": [dict(s) for s in self.shards],
        }

    def render_text(self) -> str:
        """Human-readable snapshot, one line per shard."""
        lines = [
            f"shard-loss: run stopped ({self.reason}) "
            f"at t={self.sim_time:.9f}",
            f"  lost shard {self.shard} on {self.host}: {self.detail}",
            f"  progress: {self.rounds} sync round(s), "
            f"{self.messages} cross-shard message(s), "
            f"{self.outstanding_obligations} obligation(s) outstanding",
        ]
        for s in self.shards:
            mark = "LOST" if s["lost"] else "ok"
            lines.append(
                f"  shard {s['shard']:>3} [{mark:>4}] host={s['host']} "
                f"next_event={s['next_event']:.9f} fence={s['fence']:.9f} "
                f"events={s['events']} hb={s['heartbeats']}"
            )
        return "\n".join(lines)


# -- partitioning ----------------------------------------------------------

def partition_ranks(
    nprocs: int,
    shards: int,
    strategy: str = "contiguous",
    edges: "typing.Iterable[tuple] | None" = None,
) -> list[list[int]]:
    """Split ``range(nprocs)`` into at most ``shards`` rank sets.

    ``"contiguous"`` cuts rank order into near-equal blocks (sizes differ
    by at most one) -- the right default for NAS kernels, whose heaviest
    traffic is nearest-neighbor in rank order.  ``"topology"`` takes
    ``edges`` -- ``(a, b)`` or ``(a, b, weight)`` tuples describing the
    application's communication graph -- orders ranks by a
    heaviest-neighbor-first traversal, and cuts *that* order into blocks,
    keeping tightly coupled ranks co-resident.  More shards than ranks
    collapses to one rank per shard.  Every shard list is ascending (rank
    creation order inside a shard must match the single-process run).
    """
    if nprocs < 1:
        raise ValueError("need at least one rank")
    if shards < 1:
        raise ValueError("need at least one shard")
    shards = min(shards, nprocs)
    if strategy == "contiguous":
        order = list(range(nprocs))
    elif strategy == "topology":
        order = _topology_order(nprocs, edges or ())
    else:
        raise ValueError(
            f"unknown partition strategy {strategy!r} "
            "(expected 'contiguous' or 'topology')"
        )
    base, extra = divmod(nprocs, shards)
    out: list[list[int]] = []
    start = 0
    for s in range(shards):
        n = base + (1 if s < extra else 0)
        out.append(sorted(order[start:start + n]))
        start += n
    return out


def _topology_order(nprocs: int, edges: typing.Iterable[tuple]) -> list[int]:
    """Rank order by heaviest-neighbor-first traversal of the comm graph."""
    weight: dict[int, dict[int, float]] = {}
    for edge in edges:
        try:
            a, b = int(edge[0]), int(edge[1])
            w = float(edge[2]) if len(edge) > 2 else 1.0
        except (IndexError, TypeError, ValueError):
            raise ValueError(f"bad edge {edge!r}") from None
        if not (0 <= a < nprocs and 0 <= b < nprocs) or a == b:
            raise ValueError(f"bad edge {edge!r}")
        weight.setdefault(a, {})[b] = weight.setdefault(a, {}).get(b, 0.0) + w
        weight.setdefault(b, {})[a] = weight.setdefault(b, {}).get(a, 0.0) + w
    order: list[int] = []
    seen = [False] * nprocs
    for root in range(nprocs):
        if seen[root]:
            continue
        stack = [root]
        seen[root] = True
        while stack:
            node = stack.pop()
            order.append(node)
            neigh = [
                n for n in weight.get(node, ())
                if not seen[n]
            ]
            # Heaviest edge visited first (popped last -> reverse sort);
            # ties break on rank index for determinism.
            neigh.sort(key=lambda n: (weight[node][n], -n))
            for n in neigh:
                seen[n] = True
            stack.extend(neigh)
    return order


def _validate_partition(partition: list[list[int]], nprocs: int) -> None:
    seen: set[int] = set()
    for ranks in partition:
        if not ranks:
            raise ValueError("empty shard in partition")
        for r in ranks:
            if not 0 <= r < nprocs or r in seen:
                raise ValueError(f"rank {r} missing, duplicated, or out of range")
            seen.add(r)
    if len(seen) != nprocs:
        raise ValueError("partition does not cover every rank")


# -- worker ----------------------------------------------------------------

@dataclasses.dataclass
class _ShardTask:
    """Everything one worker needs to build its slice of the job."""

    shard_id: int
    ranks: list[int]
    shard_of: list[int]
    app: typing.Callable
    nprocs: int
    config: "MpiConfig"
    params: NetworkParams
    xfer_table: object
    label: str
    app_args: tuple
    seed: int
    record_transfers: bool
    #: Optional :meth:`repro.tracing.Tracer.child_wire` dict: the worker
    #: adopts it so its spans join the coordinator's trace.
    trace_wire: "dict | None" = None
    #: Coalesce cross-shard message lists into columnar wire frames
    #: (:mod:`repro.netsim.wire`) on the pipe, both directions.  Decoded
    #: lists are bit-identical to the originals; only pickle cost changes.
    batch: bool = True


class _AdvanceReply(typing.NamedTuple):
    """One shard's answer to an ``advance`` grant."""

    next_event: float
    msgs: list
    events: int
    busy: float
    #: Time of this shard's last dispatched event so far (finalize anchor).
    tail: float


class _ShardResult(typing.NamedTuple):
    """Final per-shard payload after global termination."""

    shard_id: int
    ranks: list
    reports: dict
    returns: dict
    finish_times: dict
    compute_logs: dict
    transfer_log: "list | None"
    bytes_on_wire: float
    events: int
    busy: float
    msgs_across: int
    #: Span payload of the worker's tracer (None when tracing was off).
    trace: "dict | None" = None
    #: Largest pending-event population this shard's engine ever held.
    heap_high_water: int = 0
    #: Times the engine's heap migrated into the calendar queue.
    calendar_engagements: int = 0


class ShardWorker:
    """One shard: engine + fabric + the rank stacks it owns.

    Driven by a coordinator through :meth:`advance` grants; never runs
    past a fence it was not granted.  Usable in-process (``backend=
    "inline"``) or inside a forked worker (``backend="process"``).
    """

    def __init__(self, task: _ShardTask) -> None:
        from repro.core.monitor import Monitor
        from repro.runtime.launcher import build_rank_stack
        from repro.netsim.fabric import Fabric
        from repro.sim import Engine

        self.task = task
        self._monitor_cls = Monitor
        self.tracer = None
        self._ch_advance = self._ch_inject = None
        if task.trace_wire is not None:
            from repro.tracing.span import Tracer

            self.tracer = Tracer.adopt(task.trace_wire)
            self._ch_advance = self.tracer.channel("advance", "shard.advance")
            self._ch_inject = self.tracer.channel("inject", "shard.inject")
        self.engine = engine = Engine()
        if self.tracer is not None:
            engine.attach_tracer(self.tracer)
        self.fabric = fabric = Fabric(
            engine, task.params, task.nprocs, task.config.nics_per_node,
            seed=task.seed, record_transfers=task.record_transfers,
            owned_nodes=task.ranks, shard_of=task.shard_of,
            shard_id=task.shard_id,
        )
        self.monitors: dict[int, object] = {}
        self.contexts: dict[int, object] = {}
        self.finish_times: dict[int, float] = {r: 0.0 for r in task.ranks}
        self.returns: dict[int, object] = {r: None for r in task.ranks}
        self.procs: dict[int, object] = {}
        self.busy = 0.0
        self.tail = 0.0
        for rank in task.ranks:
            monitor, _endpoint, context, _sink = build_rank_stack(
                engine, fabric, rank, task.nprocs, task.config,
                task.xfer_table,
            )
            self.monitors[rank] = monitor
            self.contexts[rank] = context

        def rank_main(rank: int) -> typing.Generator:
            ctx = self.contexts[rank]
            result = yield from task.app(ctx, *task.app_args)
            yield from ctx.comm.finalize()
            self.finish_times[rank] = engine.now
            self.returns[rank] = result
            return result

        for rank in task.ranks:
            self.procs[rank] = engine.process(rank_main(rank))

    def next_event(self) -> float:
        """Earliest *live* pending event time (``inf`` when drained)."""
        return self.engine.live_peek()

    def advance(self, fence: float, msgs: list) -> _AdvanceReply:
        """Inject ``msgs``, run strictly below ``fence``, report back."""
        t0 = time.process_time()
        engine = self.engine
        fabric = self.fabric
        tracer = self.tracer
        if msgs:
            sp_t0 = tracer.now() if tracer is not None else 0.0
            for msg in msgs:
                if msg.when < engine.now:  # pragma: no cover - invariant guard
                    raise ShardError(
                        f"conservative fence violated: message at "
                        f"t={msg.when} delivered behind the shard clock "
                        f"t={engine.now}"
                    )
                fabric.channel_inject(msg)
            if tracer is not None:
                ch = self._ch_inject
                ch.append(sp_t0)
                ch.append(tracer.now())
        until = math.nextafter(fence, -_INF)
        if until > engine.now:
            before = engine.processed_count
            sp_t0 = tracer.now() if tracer is not None else 0.0
            engine.run(until=until)
            if tracer is not None:
                ch = self._ch_advance
                ch.append(sp_t0)
                ch.append(tracer.now())
            if engine.processed_count > before:
                self.tail = engine.dispatch_tail
        self.busy += time.process_time() - t0
        return _AdvanceReply(
            next_event=self.next_event(),
            msgs=fabric.router.drain(),
            events=engine.processed_count,
            busy=self.busy,
            tail=self.tail,
        )

    def finish(self, final_time: float) -> _ShardResult:
        """Finalize monitors into reports; detect ranks that never ended.

        ``final_time`` is the global last-event time: a drain run's clock
        stops there, so monitors must read it at finalize for sharded
        reports to be bit-identical (each worker's own clock sits at its
        last fence, past its last event).
        """
        self.engine.now = final_time
        task = self.task
        stuck = sum(1 for p in self.procs.values() if p.is_alive)
        if stuck:
            raise RuntimeError(
                f"deadlock: {stuck} rank(s) never finished "
                "(blocked on communication that cannot arrive)"
            )
        reports = {}
        for rank, monitor in self.monitors.items():
            if isinstance(monitor, self._monitor_cls):
                reports[rank] = monitor.finalize(rank=rank, label=task.label)
            else:
                reports[rank] = None
        router = self.fabric.router
        return _ShardResult(
            shard_id=task.shard_id,
            ranks=list(task.ranks),
            reports=reports,
            returns=dict(self.returns),
            finish_times=dict(self.finish_times),
            compute_logs={r: self.contexts[r].compute_log for r in task.ranks},
            transfer_log=self.fabric.transfer_log,
            bytes_on_wire=self.fabric.total_bytes_on_wire(),
            events=self.engine.processed_count,
            busy=self.busy,
            msgs_across=getattr(router, "sent_across", 0),
            trace=(self.tracer.to_payload()
                   if self.tracer is not None else None),
            heap_high_water=self.engine.heap_high_water,
            calendar_engagements=self.engine.calendar_engagements,
        )


# -- transports ------------------------------------------------------------

class _InlineHandle:
    """Shard driven in the coordinator's own process (tests, debugging)."""

    def __init__(self, task: _ShardTask) -> None:
        self.worker = ShardWorker(task)
        self._reply: _AdvanceReply | None = None

    def begin(self) -> float:
        return self.worker.next_event()

    def advance_async(self, fence: float, msgs: list) -> None:
        self._reply = self.worker.advance(fence, msgs)

    def collect(self) -> _AdvanceReply:
        reply = self._reply
        assert reply is not None
        self._reply = None
        return reply

    def finish(self, final_time: float) -> _ShardResult:
        return self.worker.finish(final_time)

    def close(self) -> None:
        pass


def _worker_main(conn, task: _ShardTask) -> None:
    """Worker-process loop: build the shard, serve coordinator commands."""
    try:
        worker = ShardWorker(task)
        batch = task.batch
        conn.send(("ready", worker.next_event()))
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "advance":
                msgs = _wire.unpack_frame(cmd[2]) if batch else cmd[2]
                reply = worker.advance(cmd[1], msgs)
                if batch:
                    reply = reply._replace(msgs=_wire.pack_frame(reply.msgs))
                conn.send(("reply", reply))
            elif op == "finish":
                conn.send(("result", worker.finish(cmd[1])))
                return
            else:  # "abort"
                return
    except BaseException:
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _mp_context():
    """Fork where available (no pickling of app/config), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class _ProcHandle:
    """Shard living in a worker process, driven over a pipe."""

    #: No heartbeat machinery: a local child dying surfaces as EOFError
    #: on the very next read, so the readiness loop never needs a poll
    #: timeout (``None`` keeps ``mp_wait`` fully blocking).
    poll_interval: "float | None" = None

    def __init__(self, ctx, task: _ShardTask) -> None:
        self.batch = task.batch
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main, args=(child, task), daemon=True
        )
        self.proc.start()
        child.close()

    @property
    def waitable(self):
        """What ``multiprocessing.connection.wait`` selects on."""
        return self.conn

    def begin(self) -> float:
        return self._expect("ready")

    def advance_async(self, fence: float, msgs: list) -> None:
        if self.batch:
            self.conn.send(("advance", fence, _wire.pack_frame(msgs)))
        else:
            self.conn.send(("advance", fence, msgs))

    def collect(self) -> _AdvanceReply:
        reply = self._expect("reply")
        if self.batch:
            reply = reply._replace(msgs=_wire.unpack_frame(reply.msgs))
        return reply

    def collect_ready(self) -> "_AdvanceReply | None":
        # A readable pipe holds one whole reply (Connection framing), so
        # the blocking collect returns promptly -- same semantics the
        # null protocol always had on this backend.
        return self.collect()

    def check_alive(self) -> None:
        pass

    def finish(self, final_time: float) -> _ShardResult:
        self.conn.send(("finish", final_time))
        return self._expect("result")

    def _expect(self, tag: str):
        try:
            msg = self.conn.recv()
        except EOFError:
            raise ShardError(
                f"shard worker pid={self.proc.pid} died without a reply"
            ) from None
        if msg[0] == "error":
            raise ShardError(f"shard worker failed:\n{msg[1]}")
        if msg[0] != tag:
            raise ShardError(f"protocol error: expected {tag!r}, got {msg[0]!r}")
        return msg[1]

    def close(self) -> None:
        try:
            self.conn.send(("abort",))
        except (OSError, ValueError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.proc.join(timeout=5)
        if self.proc.is_alive():  # pragma: no cover - crash cleanup
            self.proc.terminate()
            self.proc.join()


class _SocketHandle:
    """Shard living on a (possibly remote) worker, driven over TCP.

    Same command protocol as :class:`_ProcHandle`; what is added is
    liveness.  Every blocking receive is bounded by
    ``options.host_timeout`` measured from the *last frame of any kind*
    -- the worker's heartbeat thread keeps that clock moving while the
    shard computes, so a long engine window does not read as death, but
    a wedged or vanished host does, within the deadline.  EOF maps to an
    immediate :class:`ShardHostLost` ("connection-lost"); silence maps
    to one with "heartbeat-timeout".  The null protocol's readiness loop
    uses :meth:`collect_ready`, which drains whatever bytes have arrived
    without blocking -- a ready socket may hold only a heartbeat or half
    a reply.
    """

    def __init__(self, task: _ShardTask, host: str, port: int,
                 options) -> None:
        from repro.netsim import transport as _tp

        self._tp = _tp
        self.batch = task.batch
        self.shard_id = task.shard_id
        self.host = host
        self.port = port
        self.options = options
        #: Readiness-loop poll period: liveness is checked at least this
        #: often while a shard is busy.
        self.poll_interval = options.heartbeat_interval
        self.heartbeats = 0
        #: Columnar payload bytes (both directions) -- the simulation's
        #: own traffic, vs the stream's total byte counters.
        self.payload_bytes = 0
        self.events = 0
        self.busy = 0.0
        # Seeded jitter: the retry schedule is reproducible per
        # (run seed, shard), like every other RNG stream in repro.faults.
        rng = random.Random((task.seed << 8) ^ (task.shard_id + 1))
        sock, self.connect_attempts = _tp.connect_with_retry(
            host, port, options, rng)
        self.stream = _tp.FrameStream(sock)
        self.worker_meta = _tp.client_handshake(
            self.stream,
            {
                "shard": task.shard_id,
                "label": task.label,
                "nprocs": task.nprocs,
                "ranks": list(task.ranks),
                "batch": task.batch,
                "heartbeat_interval": options.heartbeat_interval,
            },
            options.handshake_timeout,
        )
        self._send(("task", task))

    @property
    def waitable(self):
        """Raw socket for ``multiprocessing.connection.wait``."""
        return self.stream.sock

    def _lost(self, reason: str, detail: str) -> ShardHostLost:
        where = f"{self.host}:{self.port}"
        return ShardHostLost(
            f"shard {self.shard_id} worker {where} lost ({reason}): "
            f"{detail}",
            reason=reason, shard=self.shard_id, host=where,
        )

    def _send(self, msg) -> None:
        try:
            self.stream.send(msg)
        except self._tp.ConnectionLost as exc:
            raise self._lost("connection-lost", str(exc)) from exc

    def begin(self) -> float:
        return self._expect("ready")

    def advance_async(self, fence: float, msgs: list) -> None:
        if self.batch:
            frame = _wire.pack_frame(msgs)
            self.payload_bytes += _wire.frame_nbytes(frame)
            self._send(("advance", fence, frame))
        else:
            self._send(("advance", fence, msgs))

    def _adopt_reply(self, reply: _AdvanceReply) -> _AdvanceReply:
        if self.batch:
            self.payload_bytes += _wire.frame_nbytes(reply.msgs)
            reply = reply._replace(msgs=_wire.unpack_frame(reply.msgs))
        self.events = reply.events
        self.busy = reply.busy
        return reply

    def collect(self) -> _AdvanceReply:
        return self._adopt_reply(self._expect("reply"))

    def collect_ready(self) -> "_AdvanceReply | None":
        tp = self._tp
        while True:
            try:
                ok, msg = self.stream.try_recv()
            except tp.ConnectionLost as exc:
                raise self._lost("connection-lost", str(exc)) from exc
            if not ok:
                return None
            op = msg[0]
            if op == "hb":
                self.heartbeats += 1
                continue
            if op == "error":
                raise ShardError(f"shard worker failed:\n{msg[1]}")
            if op != "reply":
                raise ShardError(
                    f"protocol error: expected 'reply', got {op!r}")
            return self._adopt_reply(msg[1])

    def check_alive(self) -> None:
        silent = time.monotonic() - self.stream.last_recv
        if silent > self.options.host_timeout:
            raise self._lost(
                "heartbeat-timeout",
                f"no frame for {silent:.1f}s "
                f"(host_timeout={self.options.host_timeout:.1f}s)")

    def finish(self, final_time: float) -> _ShardResult:
        self._send(("finish", final_time))
        return self._expect("result")

    def _expect(self, tag: str):
        tp = self._tp
        options = self.options
        stream = self.stream
        while True:
            remaining = (stream.last_recv + options.host_timeout
                         - time.monotonic())
            if remaining <= 0.0:
                raise self._lost(
                    "heartbeat-timeout",
                    f"no frame for {options.host_timeout:.1f}s while "
                    f"waiting for {tag!r}")
            try:
                msg = stream.recv(
                    timeout=min(remaining, options.heartbeat_interval))
            except tp.TransportTimeout:
                continue
            except tp.ConnectionLost as exc:
                raise self._lost("connection-lost", str(exc)) from exc
            op = msg[0]
            if op == "hb":
                self.heartbeats += 1
                continue
            if op == "error":
                raise ShardError(f"shard worker failed:\n{msg[1]}")
            if op != tag:
                raise ShardError(
                    f"protocol error: expected {tag!r}, got {op!r}")
            return msg[1]

    def transport_stats(self) -> dict:
        stream = self.stream
        return {
            "host": f"{self.host}:{self.port}",
            "connect_attempts": self.connect_attempts,
            "heartbeats": self.heartbeats,
            "frames_out": stream.frames_out,
            "frames_in": stream.frames_in,
            "bytes_out": stream.bytes_out,
            "bytes_in": stream.bytes_in,
            "payload_bytes": self.payload_bytes,
        }

    def close(self) -> None:
        try:
            self.stream.send(("abort",))
        except Exception:
            pass
        self.stream.close()


# -- coordinator -----------------------------------------------------------

class _Coordinator:
    """Conservative-fence bookkeeping shared by both sync protocols.

    Every per-round quantity is maintained *incrementally* so one
    synchronization round costs O(shards), never O(shards²) and never a
    rescan of boxed messages or outstanding obligations:

    * the three per-shard bound vectors -- next pending event time,
      earliest undelivered inbox message, earliest outstanding
      placement-ACK horizon -- live side by side in ``_bounds``, one
      contiguous double array of length ``3 * shards`` (layout
      ``[next_event | inbox_min | ob_floor]``), updated in O(1) by
      :meth:`route` / :meth:`absorb` / :meth:`grant`;
    * the obligation floor is lowered in O(1) when a placement registers
      and refreshed from a per-creditor lazy-deletion min-heap only when
      an ACK retires (each obligation is pushed and popped exactly once
      over its lifetime, so the amortized cost is O(log m) -- not the
      O(shards * m) full scan the per-shard fence cap used to pay);
    * a ``fences_dirty`` short-circuit -- :meth:`fences_now` returns the
      cached fence vector untouched while no input (next events, inboxes,
      obligations) changed, which the null-message protocol hits whenever
      it re-arms without new replies.

    The contiguous layout is load-bearing, not a style choice: a fence
    recompute runs once per round, right after a context switch or a
    burst of engine work evicted the coordinator from cache, so its cost
    is dominated by how many distinct objects it touches.  Reading a few
    cache lines of raw doubles keeps the cold call close to the hot one;
    lists of boxed floats measured ~3x slower in exactly this position.
    """

    def __init__(self, handles: list, shard_of: list[int],
                 params: NetworkParams, la: float,
                 fence_impl: str = "incremental") -> None:
        if fence_impl not in ("incremental", "reference"):
            raise ValueError(
                f"fence_impl must be 'incremental' or 'reference', "
                f"got {fence_impl!r}"
            )
        self.handles = handles
        self.shard_of = shard_of
        self.params = params
        self.la = la
        self.fence_impl = fence_impl
        n = len(handles)
        self.nshards = n
        #: Bound vectors, contiguous: ``[0:n)`` next pending event per
        #: shard, ``[n:2n)`` earliest undelivered inbox message (inf when
        #: empty), ``[2n:3n)`` earliest outstanding obligation horizon
        #: (inf when none).
        self._bounds = array.array(
            "d", [h.begin() for h in handles] + [_INF] * (2 * n)
        )
        self.inbox: list[list] = [[] for _ in range(n)]
        self.fences = [0.0] * n
        #: Outstanding placement-ACK obligations:
        #: (writer_node, writer_port, token) -> (creditor_shard, horizon).
        self.obligations: dict[tuple, tuple[int, float]] = {}
        #: Per-creditor (horizon, key) min-heaps over ``obligations``,
        #: lazily pruned: retired entries stay until they surface at the
        #: head (tokens are never reused, so key membership in
        #: ``obligations`` is the liveness test).
        self._ob_heaps: list[list[tuple[float, tuple]]] = [
            [] for _ in range(n)
        ]
        self.rounds = 0
        self.messages = 0
        #: Rounds whose fence vector was recomputed (cache misses).
        self.fence_recomputes = 0
        self._fences_cache: "list[float] | None" = None
        # Bind the selected implementation once: the per-round call goes
        # straight to it with no string compare on the hot path.
        self.fences_now = (
            self._fences_incremental if fence_impl == "incremental"
            else self._fences_ref_cached
        )
        #: Global last-event time seen so far (the finalize anchor).
        self.tail = 0.0

    @property
    def next_event(self) -> "array.array":
        """Per-shard next pending event times (a live ``_bounds`` slice)."""
        return self._bounds[:self.nshards]

    def route(self, msg) -> None:
        self.messages += 1
        shard = self.shard_of[msg.dst_node]
        self.inbox[shard].append(msg)
        bounds = self._bounds
        n = self.nshards
        if msg.when < bounds[n + shard]:
            bounds[n + shard] = msg.when
        kind = msg.kind
        if kind == _ch.PLACE:
            key = (msg.src_node, msg.src_port, msg.extra[1])
            horizon = msg.when + self.params.wire_time(msg.nbytes)
            creditor = self.shard_of[msg.src_node]
            self.obligations[key] = (creditor, horizon)
            heapq.heappush(self._ob_heaps[creditor], (horizon, key))
            if horizon < bounds[2 * n + creditor]:
                bounds[2 * n + creditor] = horizon
        elif kind == _ch.ACK:
            key = (msg.dst_node, msg.dst_port, msg.extra)
            entry = self.obligations.pop(key, None)
            if entry is None:
                raise ShardError(f"unmatched placement ACK {key!r}")
            self._refresh_ob_floor(entry[0])
        self._fences_cache = None

    def _refresh_ob_floor(self, shard: int) -> None:
        """Recompute the obligation floor after an obligation retired.

        Lazy deletion: heap entries whose key was ACKed are discarded as
        they surface.  Each obligation is pushed and popped exactly once
        over its lifetime, so the amortized cost is O(log m).
        """
        heap = self._ob_heaps[shard]
        alive = self.obligations
        floor = _INF
        while heap:
            horizon, key = heap[0]
            if key in alive:
                floor = horizon
                break
            heapq.heappop(heap)
        self._bounds[2 * self.nshards + shard] = floor

    def horizon_min(self) -> float:
        """Global floor: no shard may pass this until work drains.

        O(shards) over the maintained bound array -- the next-event and
        inbox-minimum halves are exactly the candidates the old
        every-boxed-message rescan produced.
        """
        return min(self._bounds[:2 * self.nshards])

    def _fences_incremental(self) -> list[float]:
        """Per-shard CMB fences from the current conservative bounds.

        Static bound ``s[j]``: the earliest *known* work for shard ``j``
        -- its next pending event, undelivered inbox messages, and
        in-flight placement-ACK horizons (the one message class whose
        effect time is not yet in any queue).  A shard with ``s[j] = inf``
        is not done, though: its ranks may be blocked in a receive, to be
        woken by a message another shard has yet to generate.  Following
        those chains gives the fixpoint

            b[j] = min(s[j], min_{k != j} b[k] + LA)

        which closes to ``min(s[j], (min_{k != j} s[k]) + LA)`` because
        every extra hop only adds lookahead.  The fence for shard ``i`` is
        then ``min_{j != i} b[j] + LA`` -- a lagging shard holds everyone
        else to its own bound plus one hop, so released backlogs can never
        generate effects behind a receiver's fence -- capped by ``i``'s
        own outstanding ACK horizons (an in-flight ACK may take effect as
        little as ``wire_time`` after its placement, undercutting the
        lookahead).

        Each "min over everyone else" is answered from the two smallest
        values of the underlying vector (the min over ``k != j`` is the
        global minimum unless ``j`` holds it, in which case it is the
        runner-up), so one call is a constant number of O(shards) passes
        -- identical floats to the reference nested-scan formulation,
        verified by the differential tests in ``tests/test_sim_parallel``.
        """
        cached = self._fences_cache
        if cached is not None:
            return cached
        n = self.nshards
        n2 = 2 * n
        la = self.la
        bounds = self._bounds
        # Pass 1: per-shard static bound s[j] from the maintained bound
        # array, tracking the two smallest s on the way.
        s = [0.0] * n
        s1 = s2 = _INF
        i1 = -1
        for j in range(n):
            v = bounds[j]
            x = bounds[n + j]
            if x < v:
                v = x
            x = bounds[n2 + j]
            if x < v:
                v = x
            s[j] = v
            if v < s1:
                s2 = s1
                s1 = v
                i1 = j
            elif v < s2:
                s2 = v
        # Pass 2: close the fixpoint, tracking the two smallest b.
        b1 = b2 = _INF
        bi1 = -1
        b = s  # overwritten in place; s[j] is read before b[j] is stored
        for j in range(n):
            o = (s2 if j == i1 else s1) + la
            v = s[j]
            if o < v:
                v = o
            b[j] = v
            if v < b1:
                b2 = b1
                b1 = v
                bi1 = j
            elif v < b2:
                b2 = v
        # Pass 3: everyone-else bound plus lookahead, capped by own
        # outstanding obligation horizons.
        fences = [
            min((b2 if i == bi1 else b1) + la, bounds[n2 + i])
            for i in range(n)
        ]
        self._fences_cache = fences
        self.fence_recomputes += 1
        return fences

    def _fences_ref_cached(self) -> list[float]:
        """:meth:`fences_reference` behind the same recompute cache."""
        cached = self._fences_cache
        if cached is not None:
            return cached
        fences = self.fences_reference()
        self._fences_cache = fences
        self.fence_recomputes += 1
        return fences

    def fences_reference(self) -> list[float]:
        """The O(shards²) nested-scan fence formulation, kept as referee.

        Bit-for-bit the pre-optimization :meth:`fences_now`: the
        differential tests assert the incremental path returns the same
        floats, and ``benchmarks/test_shard_scale.py`` runs the whole
        workload under ``fence_impl="reference"`` to quantify the win.
        """
        n = self.nshards
        la = self.la
        s = list(self._bounds[:n])
        for j, box in enumerate(self.inbox):
            for msg in box:
                if msg.when < s[j]:
                    s[j] = msg.when
        for creditor, horizon in self.obligations.values():
            if horizon < s[creditor]:
                s[creditor] = horizon
        b = [
            min(
                s[j],
                min(
                    (s[k] for k in range(n) if k != j), default=_INF
                ) + la,
            )
            for j in range(n)
        ]
        fences = []
        for i in range(n):
            f = min((b[j] for j in range(n) if j != i), default=_INF) + la
            for creditor, horizon in self.obligations.values():
                if creditor == i and horizon < f:
                    f = horizon
            fences.append(f)
        return fences

    def absorb(self, shard: int, reply: _AdvanceReply) -> None:
        self._bounds[shard] = reply.next_event
        if reply.tail > self.tail:
            self.tail = reply.tail
        for msg in reply.msgs:
            self.route(msg)
        self._fences_cache = None

    def grant(self, shard: int, fence: float) -> None:
        msgs = self.inbox[shard]
        self.inbox[shard] = []
        # Keep the conservative bound valid while the shard is busy: its
        # earliest activity is no earlier than its known next event or
        # anything just delivered to it (the maintained inbox minimum --
        # no per-message rescan of the delivered batch).
        bounds = self._bounds
        im = self.nshards + shard
        if bounds[im] < bounds[shard]:
            bounds[shard] = bounds[im]
        bounds[im] = _INF
        self.fences[shard] = fence
        self._fences_cache = None
        self.handles[shard].advance_async(fence, msgs)

    def done(self) -> bool:
        return (
            self.horizon_min() == _INF and not self.obligations
        )


def _coordinate_window(co: _Coordinator, tracer=None) -> None:
    """Global barrier rounds: grant every eligible shard, collect all.

    With a ``tracer``, each round records three spans: ``coord.fence``
    (the O(shards²) bound recomputation), ``coord.dispatch`` (issuing
    grants -- with the inline backend this *is* shard execution, so the
    explain CLI treats it like wait time), and ``coord.wait`` (blocking
    on shard replies).
    """
    n = len(co.handles)
    if tracer is not None:
        # One tracer.now() per phase boundary (the end of one phase is
        # the start of the next) feeding preopened float-pair channels:
        # per-round tracing stays allocation-free so the <5% overhead
        # budget holds even at thousands of rounds per second.
        ch_fence = tracer.channel("fences", "coord.fence")
        ch_disp = tracer.channel("dispatch", "coord.dispatch")
        ch_wait = tracer.channel("collect", "coord.wait")
    while not co.done():
        if co.horizon_min() == _INF:
            raise ShardError(
                "sync wedged: obligations outstanding with no pending events"
            )
        ta = tracer.now() if tracer is not None else 0.0
        safe = co.fences_now()
        tb = tracer.now() if tracer is not None else 0.0
        selected = []
        for i in range(n):
            fence = safe[i]
            if co.inbox[i] or fence > co.fences[i]:
                selected.append(i)
                co.grant(i, max(fence, co.fences[i]))
        if not selected:
            raise ShardError("sync stalled: no shard can advance")
        tc = tracer.now() if tracer is not None else 0.0
        for i in selected:
            co.absorb(i, co.handles[i].collect())
        if tracer is not None:
            td = tracer.now()
            ch_fence.append(ta)
            ch_fence.append(tb)
            ch_disp.append(tb)
            ch_disp.append(tc)
            ch_wait.append(tc)
            ch_wait.append(td)
        co.rounds += 1


def _coordinate_null(co: _Coordinator, tracer=None) -> None:
    """Asynchronous pacing: re-arm each shard as soon as its fence moves.

    The fence bound is the same as the window protocol's; what changes is
    that a shard with a bigger safe window keeps running while slower
    shards catch up, instead of everyone pausing at a global barrier --
    the coordinator plays the role null messages play in CMB-style
    distributed simulations.

    Works over any handle exposing ``waitable`` (a pipe or a raw socket
    -- ``multiprocessing.connection.wait`` selects on both).  With pipe
    handles the wait blocks indefinitely and a readable pipe always
    yields a whole reply, exactly the old behavior.  Socket handles set
    ``poll_interval``: the wait then times out at the heartbeat period
    so liveness is re-checked between replies, a wake-up may carry only
    a heartbeat (``collect_ready`` returns ``None``), and a shard gone
    silent raises :class:`ShardHostLost` within ``host_timeout``.
    """
    from multiprocessing.connection import wait as mp_wait

    handles = co.handles
    n = len(handles)
    waitables = {id(h.waitable): i for i, h in enumerate(handles)}
    poll: "float | None" = None
    for h in handles:
        hb = h.poll_interval
        if hb is not None:
            poll = hb if poll is None else min(poll, hb)
    if tracer is not None:
        ch_fence = tracer.channel("fences", "coord.fence")
        ch_disp = tracer.channel("dispatch", "coord.dispatch")
        ch_wait = tracer.channel("wait", "coord.wait")
    busy: set[int] = set()
    while True:
        granted = 0
        cand = co.horizon_min()
        if cand == _INF and not busy:
            if not co.obligations:
                return
            raise ShardError(
                "sync wedged: obligations outstanding with no pending events"
            )
        if cand != _INF:
            ta = tracer.now() if tracer is not None else 0.0
            safe = co.fences_now()
            tb = tracer.now() if tracer is not None else 0.0
            for i in range(n):
                if i in busy:
                    continue
                fence = safe[i]
                if co.inbox[i] or fence > co.fences[i]:
                    co.grant(i, max(fence, co.fences[i]))
                    busy.add(i)
                    granted += 1
            if tracer is not None:
                tc = tracer.now()
                ch_fence.append(ta)
                ch_fence.append(tb)
                ch_disp.append(tb)
                ch_disp.append(tc)
        if not busy:
            if granted == 0:
                raise ShardError("sync stalled: no shard can advance")
            continue
        tw = tracer.now() if tracer is not None else 0.0
        ready = mp_wait([handles[i].waitable for i in busy], timeout=poll)
        if tracer is not None:
            ch_wait.append(tw)
            ch_wait.append(tracer.now())
        absorbed = 0
        for w in ready:
            shard = waitables[id(w)]
            reply = handles[shard].collect_ready()
            if reply is None:
                continue
            co.absorb(shard, reply)
            busy.discard(shard)
            absorbed += 1
        if poll is not None:
            for i in tuple(busy):
                handles[i].check_alive()
        if absorbed:
            co.rounds += 1


# -- launcher --------------------------------------------------------------

class ShardedFabricView:
    """What remains of "the fabric" after workers exit: global facts.

    Per-NIC state (port clocks, queues) lived and died in the shard
    workers; sums and the merged ground-truth transfer log survive.
    """

    def __init__(self, params: NetworkParams, num_nodes: int,
                 nics_per_node: int, transfer_log: "list | None",
                 bytes_on_wire: float) -> None:
        self.params = params
        self.num_nodes = num_nodes
        self.nics_per_node = nics_per_node
        #: Merged transfer records, sorted by interval (the per-shard
        #: append orders are not comparable across workers).
        self.transfer_log = transfer_log
        self.injector = None
        self._bytes = bytes_on_wire

    def total_bytes_on_wire(self) -> float:
        return self._bytes

    def nic(self, node: int, port: int = 0):
        raise ShardError(
            "per-NIC state is not available after a sharded run "
            "(it lived in the shard workers)"
        )

    nics_of = nic

    def __repr__(self) -> str:
        return (
            f"<ShardedFabricView {self.num_nodes} nodes x "
            f"{self.nics_per_node} NICs>"
        )


def _diagnose_host_loss(exc: ShardHostLost,
                        co: _Coordinator) -> ShardLossDiagnostic:
    """Freeze the coordinator's view of every shard at the loss point."""
    fences = co.fences
    shards = []
    for i, h in enumerate(co.handles):
        stats = (h.transport_stats()
                 if hasattr(h, "transport_stats") else {})
        shards.append({
            "shard": i,
            "host": stats.get("host", "local"),
            "next_event": co._bounds[i],
            "fence": fences[i],
            "events": getattr(h, "events", 0),
            "busy_s": getattr(h, "busy", 0.0),
            "heartbeats": stats.get("heartbeats", 0),
            "frames_in": stats.get("frames_in", 0),
            "frames_out": stats.get("frames_out", 0),
            "lost": i == exc.shard,
        })
    return ShardLossDiagnostic(
        reason=exc.reason or "host-loss",
        shard=exc.shard,
        host=exc.host,
        detail=str(exc),
        sim_time=co.tail,
        rounds=co.rounds,
        messages=co.messages,
        outstanding_obligations=len(co.obligations),
        shards=shards,
    )


def run_app_sharded(
    app: typing.Callable,
    nprocs: int,
    shards: int,
    config: "MpiConfig | None" = None,
    params: "NetworkParams | None" = None,
    xfer_table: object = None,
    label: str = "",
    app_args: tuple = (),
    seed: int = 0,
    record_transfers: bool = False,
    telemetry: object = None,
    metrics: object = None,
    watchdog: object = None,
    sync: str = "window",
    strategy: str = "contiguous",
    backend: str = "process",
    partition: "list[list[int]] | None" = None,
    edges: "typing.Iterable[tuple] | None" = None,
    tracer: "typing.Any | None" = None,
    batch: bool = True,
    fence_impl: str = "incremental",
    hosts: "typing.Sequence | None" = None,
    transport: "typing.Any | None" = None,
) -> "RunResult":
    """Run ``app`` on ``nprocs`` ranks split across ``shards`` workers.

    The sharded twin of :func:`repro.runtime.launcher.run_app` (which
    forwards here when called with ``shards=N``).  ``params.delivery`` is
    forced to ``"channel"``; results are bit-identical to a single-process
    channel run of the same seed.  ``backend="inline"`` keeps every shard
    in this process (deterministic and fast to spawn -- the default for
    tests), ``"process"`` forks one worker per shard.  See the module
    docstring for the ``sync`` protocols.

    ``tracer`` (optional :class:`~repro.tracing.Tracer`) records
    coordinator phase spans (fence recompute, dispatch, reply wait,
    finalize) and per-shard ``shard.advance`` / ``shard.inject`` spans;
    shard workers join the trace over the existing task pipe and their
    payloads are absorbed, so the merged Perfetto timeline shows one pid
    per shard.  Reports stay bit-identical with tracing off.

    High-rank knobs: ``batch`` (default on) coalesces each round's
    cross-shard message lists into columnar wire frames on the worker
    pipes -- thousands of per-message pickles collapse to a handful of
    ``struct`` calls, with decoded lists bit-identical to the originals
    (no effect under ``backend="inline"``, which passes lists by
    reference).  ``fence_impl`` selects the coordinator's fence math:
    ``"incremental"`` (default, O(shards) per round) or ``"reference"``
    (the O(shards²) nested-scan formulation, kept for differential tests
    and the before/after benchmark).  Both return identical floats.

    ``backend="socket"`` drives workers started elsewhere with
    ``python -m repro.sim.remote --listen`` (possibly on other hosts):
    ``hosts`` lists their ``"host:port"`` addresses, assigned to shards
    round-robin, and ``transport`` (a
    :class:`repro.netsim.transport.TransportOptions`) sets connect
    retry/heartbeat/host-timeout policy.  Results stay bit-identical to
    the other backends; a worker that dies or goes silent raises
    :class:`ShardHostLost` (with a :class:`ShardLossDiagnostic` and a
    partial report attached) within ``host_timeout`` instead of hanging.
    """
    from repro.mpisim.config import MpiConfig
    from repro.runtime.launcher import RunResult, default_xfer_table

    if nprocs < 1:
        raise ValueError("need at least one rank")
    for name, value in (("telemetry", telemetry), ("metrics", metrics),
                        ("watchdog", watchdog)):
        if value is not None:
            raise ValueError(
                f"{name} is not supported with shards (it assumes one "
                "engine); run single-process or drop the option"
            )
    if sync not in ("window", "null"):
        raise ValueError(f"sync must be 'window' or 'null', got {sync!r}")
    if backend not in ("process", "inline", "socket"):
        raise ValueError(
            f"backend must be 'process', 'inline', or 'socket', "
            f"got {backend!r}"
        )
    if backend == "socket" and not hosts:
        raise ValueError(
            "backend='socket' needs hosts=['host:port', ...] of running "
            "repro.sim.remote workers"
        )
    config = config or MpiConfig()
    base = params or NetworkParams()
    params = dataclasses.replace(base, delivery="channel")
    la = _ch.lookahead(params)
    if la <= 0.0:
        raise ValueError(
            "sharded simulation needs positive lookahead: set nonzero "
            "per_message_overhead+latency and rdma_read_request_latency"
        )
    if partition is None:
        partition = partition_ranks(nprocs, shards, strategy, edges)
    else:
        partition = [sorted(ranks) for ranks in partition]
    _validate_partition(partition, nprocs)
    nshards = len(partition)
    shard_of = [0] * nprocs
    for s, ranks in enumerate(partition):
        for r in ranks:
            shard_of[r] = s
    table = xfer_table or default_xfer_table(params)
    sp_run = (tracer.begin("sharded run", "coord.run", shards=nshards,
                           sync=sync, backend=backend)
              if tracer is not None else None)
    tasks = [
        _ShardTask(
            shard_id=s, ranks=ranks, shard_of=shard_of, app=app,
            nprocs=nprocs, config=config, params=params, xfer_table=table,
            label=label, app_args=app_args, seed=seed,
            record_transfers=record_transfers,
            trace_wire=(tracer.child_wire(f"shard {s}")
                        if tracer is not None else None),
            batch=batch,
        )
        for s, ranks in enumerate(partition)
    ]

    handles: list = []
    results: list[_ShardResult] = []
    t0 = time.perf_counter()
    try:
        if backend == "inline":
            handles = [_InlineHandle(task) for task in tasks]
        elif backend == "socket":
            from repro.netsim import transport as _tp

            opts = transport or _tp.TransportOptions()
            targets = [
                _tp.parse_hostport(h) if isinstance(h, str)
                else (str(h[0]), int(h[1]))
                for h in hosts  # type: ignore[union-attr]
            ]
            for i, task in enumerate(tasks):
                host, port = targets[i % len(targets)]
                try:
                    handles.append(_SocketHandle(task, host, port, opts))
                except _tp.TransportError as exc:
                    raise ShardError(
                        f"shard {i} worker {host}:{port}: {exc}"
                    ) from exc
        else:
            ctx = _mp_context()
            handles = [_ProcHandle(ctx, task) for task in tasks]
        co = _Coordinator(handles, shard_of, params, la,
                          fence_impl=fence_impl)
        try:
            if sync == "null" and backend in ("process", "socket"):
                _coordinate_null(co, tracer)
            else:
                # The inline backend steps shards sequentially, so barrier
                # rounds and asynchronous pacing coincide.
                _coordinate_window(co, tracer)
            sp_fin = (tracer.begin("finalize shards", "coord.finish")
                      if tracer is not None else None)
            results = [h.finish(co.tail) for h in handles]
        except ShardHostLost as exc:
            exc.diagnostic = _diagnose_host_loss(exc, co)
            exc.partial = exc.diagnostic.partial_report()
            raise
        if tracer is not None:
            for res in results:
                tracer.absorb(res.trace)
        if sp_fin is not None:
            sp_fin.end()
    finally:
        for h in handles:
            h.close()
    host_elapsed = time.perf_counter() - t0
    if sp_run is not None:
        sp_run.annotate(rounds=co.rounds, messages=co.messages).end()

    reports: list = [None] * nprocs
    returns: list = [None] * nprocs
    finish_times = [0.0] * nprocs
    compute_logs: list = [[] for _ in range(nprocs)]
    transfer_log: "list | None" = [] if record_transfers else None
    tstats = ([h.transport_stats() for h in handles]
              if backend == "socket" else None)
    shard_stats = []
    for res in results:
        for rank in res.ranks:
            reports[rank] = res.reports[rank]
            returns[rank] = res.returns[rank]
            finish_times[rank] = res.finish_times[rank]
            compute_logs[rank] = res.compute_logs[rank]
        if transfer_log is not None and res.transfer_log is not None:
            transfer_log.extend(res.transfer_log)
        entry = {
            "shard": res.shard_id,
            "ranks": res.ranks,
            "events": res.events,
            "busy_s": res.busy,
            "msgs_across": res.msgs_across,
            "heap_high_water": res.heap_high_water,
            "calendar_engagements": res.calendar_engagements,
        }
        if tstats is not None:
            ts = tstats[res.shard_id]
            entry["host"] = ts["host"]
            entry["heartbeats"] = ts["heartbeats"]
            entry["frames_out"] = ts["frames_out"]
            entry["frames_in"] = ts["frames_in"]
            # Liveness + framing/pickle cost on top of the simulation's
            # own columnar payload -- the transport's overhead share.
            entry["transport_overhead_bytes"] = (
                ts["bytes_out"] + ts["bytes_in"] - ts["payload_bytes"]
            )
        shard_stats.append(entry)
    if transfer_log is not None:
        transfer_log.sort(key=lambda t: (t.start, t.end, t.src, t.dst,
                                         t.kind, t.nbytes))
    view = ShardedFabricView(
        params, nprocs, config.nics_per_node, transfer_log,
        sum(res.bytes_on_wire for res in results),
    )
    result = RunResult(
        reports=reports,
        returns=returns,
        rank_finish_times=finish_times,
        elapsed=max(finish_times),
        config=config,
        fabric=view,  # type: ignore[arg-type]
    )
    result.compute_logs = compute_logs
    result.shard_stats = shard_stats
    result.sync_stats = {
        "mode": sync,
        "backend": backend,
        "shards": nshards,
        "lookahead": la,
        "rounds": co.rounds,
        "messages": co.messages,
        "host_elapsed_s": host_elapsed,
        "events": sum(res.events for res in results),
        "busy_s": [res.busy for res in results],
        "batch": batch,
        "fence_impl": fence_impl,
        "fence_recomputes": co.fence_recomputes,
    }
    if tstats is not None:
        result.sync_stats["transport"] = {
            "hosts": [t["host"] for t in tstats],
            "connect_attempts": [t["connect_attempts"] for t in tstats],
            "heartbeats": sum(t["heartbeats"] for t in tstats),
            "frames_out": sum(t["frames_out"] for t in tstats),
            "frames_in": sum(t["frames_in"] for t in tstats),
            "bytes_out": sum(t["bytes_out"] for t in tstats),
            "bytes_in": sum(t["bytes_in"] for t in tstats),
            "payload_bytes": sum(t["payload_bytes"] for t in tstats),
        }
    return result
