"""Discrete-event simulation kernel.

A minimal, deterministic, generator-coroutine simulation core in the style
of SimPy, written from scratch so the reproduction has no dependencies
beyond the scientific stack.  The kernel provides:

* :class:`~repro.sim.engine.Engine` -- the event heap and simulation clock,
* :class:`~repro.sim.events.Event` and friends -- one-shot triggerable
  events, :class:`~repro.sim.events.Timeout`, and the ``AnyOf`` / ``AllOf``
  condition combinators,
* :class:`~repro.sim.process.Process` -- generator-based coroutines that
  ``yield`` events to suspend until they fire.

Determinism: ties in the event heap are broken by insertion order, and the
kernel never consults wall-clock time or global RNG state, so a simulation
is a pure function of its inputs.
"""

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, SimulationError, Timeout
from repro.sim.process import Process

__all__ = [
    "AllOf",
    "AnyOf",
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]
