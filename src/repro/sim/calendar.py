"""Calendar-queue pending-event store for large event populations.

A binary heap costs O(log n) per scheduling operation.  For the pending
populations big sweeps reach (tens of thousands of in-flight NIC
completions and guard timeouts), the classic calendar queue (Brown 1988)
does better: events hash into an array of time buckets ("days") of width
``width``; dequeue-min scans forward from the current day and pops the
earliest entry of the current "year".  With a width matched to the mean
inter-event gap, both enqueue and dequeue-min are O(1) amortized.

This implementation keeps the engine's exact total order: entries are
``(when, seq, item)`` and are always popped in strictly increasing
``(when, seq)`` -- bit-for-bit the order ``heapq`` would produce, which is
what lets :class:`~repro.sim.engine.Engine` switch stores freely without
perturbing a simulation.  Each bucket is itself a small heap, so ties and
skewed buckets stay correct, merely slower.

Entries carry their integer day ordinal (``floor(when / width)``) so the
"does the bucket head belong to the current day" test is an exact integer
comparison -- no accumulated floating-point bucket-boundary drift.
"""

from __future__ import annotations

import heapq
import typing

#: Hard cap on the bucket-array size (memory bound for degenerate widths).
MAX_BUCKETS = 65536


class CalendarQueue:
    """Bucketed pending store popping in exact ``(when, seq)`` order.

    Parameters
    ----------
    entries:
        Initial ``(when, seq, item)`` entries (need not be sorted).  The
        bucket width is derived from their time span, so seeding the queue
        with a representative population (the engine migrates its whole
        heap in) gives well-tuned buckets from the first pop.
    """

    __slots__ = ("_buckets", "_mask", "_width", "_cur", "_ordinal", "n")

    def __init__(self, entries: "typing.Iterable[tuple[float, int, object]]" = ()) -> None:
        self._build(list(entries))

    # -- construction / resizing -------------------------------------------
    def _build(self, entries: "list[tuple[float, int, object]]") -> None:
        count = max(len(entries), 1)
        nbuckets = 64
        while nbuckets < count and nbuckets < MAX_BUCKETS:
            nbuckets <<= 1
        whens = sorted(e[0] for e in entries[:4096])
        if len(whens) >= 2 and whens[-1] > whens[0]:
            # Rule of thumb from the calendar-queue literature: a day a few
            # mean gaps wide keeps ~O(1) entries per visited bucket.
            width = 3.0 * (whens[-1] - whens[0]) / (len(whens) - 1)
        else:
            width = 1.0e-6
        self._width = width
        self._mask = nbuckets - 1
        self._buckets: list[list] = [[] for _ in range(nbuckets)]
        self.n = 0
        start = min(whens) if whens else 0.0
        self._ordinal = int(start / width)
        self._cur = self._ordinal & self._mask
        for when, seq, item in entries:
            self.push(when, seq, item)

    def _rebuild(self) -> None:
        self._build(self.drain())

    # -- core operations ----------------------------------------------------
    def push(self, when: float, seq: int, item: object) -> None:
        """Schedule ``item`` at key ``(when, seq)``."""
        ordinal = int(when / self._width)
        if ordinal < self._ordinal:
            # An entry behind the cursor (possible after a sparse-region
            # jump): pull the cursor back so the scan cannot miss it.
            self._ordinal = ordinal
            self._cur = ordinal & self._mask
        heapq.heappush(self._buckets[ordinal & self._mask], (when, seq, ordinal, item))
        self.n += 1
        if self.n > (self._mask + 1) << 1 and self._mask + 1 < MAX_BUCKETS:
            self._rebuild()

    def pop(self) -> "tuple[float, int, object]":
        """Remove and return the entry with the smallest ``(when, seq)``."""
        if not self.n:
            raise IndexError("pop from empty CalendarQueue")
        buckets = self._buckets
        mask = self._mask
        cur = self._cur
        ordinal = self._ordinal
        scanned = 0
        while True:
            bucket = buckets[cur]
            if bucket and bucket[0][2] <= ordinal:
                when, seq, _o, item = heapq.heappop(bucket)
                self._cur = cur
                self._ordinal = ordinal
                self.n -= 1
                return when, seq, item
            cur = (cur + 1) & mask
            ordinal += 1
            scanned += 1
            if scanned > mask:
                # A whole year is empty: jump straight to the globally
                # earliest entry instead of walking empty days.
                head = min(
                    (b[0] for b in buckets if b), key=lambda e: (e[0], e[1])
                )
                ordinal = head[2]
                cur = ordinal & mask
                scanned = 0

    def min_key(self) -> "tuple[float, int] | None":
        """The smallest pending ``(when, seq)``, or None when empty.

        Advances the day cursor past empty days as a side effect (pops are
        monotone, so this never skips a future entry).
        """
        if not self.n:
            return None
        buckets = self._buckets
        mask = self._mask
        cur = self._cur
        ordinal = self._ordinal
        scanned = 0
        while True:
            bucket = buckets[cur]
            if bucket and bucket[0][2] <= ordinal:
                self._cur = cur
                self._ordinal = ordinal
                head = bucket[0]
                return head[0], head[1]
            cur = (cur + 1) & mask
            ordinal += 1
            scanned += 1
            if scanned > mask:
                head = min(
                    (b[0] for b in buckets if b), key=lambda e: (e[0], e[1])
                )
                self._cur = head[2] & mask
                self._ordinal = head[2]
                return head[0], head[1]

    # -- bulk operations -----------------------------------------------------
    def drain(self) -> "list[tuple[float, int, object]]":
        """Remove and return every entry (unsorted)."""
        out = [
            (when, seq, item)
            for bucket in self._buckets
            for (when, seq, _o, item) in bucket
        ]
        for bucket in self._buckets:
            bucket.clear()
        self.n = 0
        return out

    def compact(self, is_dead: "typing.Callable[[object], bool]") -> int:
        """Drop every entry whose item satisfies ``is_dead``; returns the count."""
        removed = 0
        for i, bucket in enumerate(self._buckets):
            if not bucket:
                continue
            kept = [e for e in bucket if not is_dead(e[3])]
            dropped = len(bucket) - len(kept)
            if dropped:
                heapq.heapify(kept)
                self._buckets[i] = kept
                removed += dropped
        self.n -= removed
        return removed

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"<CalendarQueue n={self.n} buckets={self._mask + 1} "
            f"width={self._width:.3g}>"
        )
