"""Standalone shard-worker bootstrap for the socket backend.

``python -m repro.sim.remote --listen HOST:PORT`` turns a host into a
shard worker pool: the coordinator (``run_app_sharded(...,
backend="socket", hosts=[...])``) dials in, completes the versioned
handshake, ships a ``_ShardTask``, and then drives the exact same
advance/reply/finish command loop the fork backend runs over a pipe --
so results are bit-identical across backends by construction.

Each accepted connection is one *session* serving one shard, handled on
its own thread; one worker process can therefore host several shards
(the coordinator assigns hosts round-robin).  A session thread starts a
heartbeat thread *before* building the shard -- liveness frames flow
while rank stacks are constructed and while the engine runs long
windows, so the coordinator's ``host_timeout`` measures actual silence,
not honest work.

Trust model: tasks arrive as pickles, i.e. the coordinator runs
arbitrary code in this process -- the same trust boundary as ``mpirun``
on a shared cluster.  The default bind address is ``127.0.0.1``; bind a
routable address only on networks where every peer is already trusted.

``--fault SPEC`` (see :func:`repro.faults.parse_transport_fault_spec`)
arms deterministic transport faults on every session -- the CI host-kill
smoke and the loss-path tests use this to make a worker die or go silent
at an exact frame count.
"""

from __future__ import annotations

import argparse
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
import traceback
import typing

from repro.faults.transport import TransportFaultInjected, TransportFaultPlan
from repro.netsim import wire as _wire
from repro.netsim.transport import (
    PROTOCOL_VERSION,
    ConnectionLost,
    FrameStream,
    HandshakeError,
    TransportError,
    enable_keepalive,
    parse_hostport,
    server_handshake,
)

__all__ = ["LocalWorkerPool", "WorkerServer", "main"]

#: How long a freshly accepted connection may take to complete the
#: handshake and ship its task before the session is abandoned.
_SETUP_TIMEOUT = 60.0


def _worker_meta() -> dict:
    return {
        "protocol": PROTOCOL_VERSION,
        "pid": os.getpid(),
        "python": sys.version.split()[0],
    }


def _heartbeat_loop(stream: FrameStream, interval: float,
                    stop: threading.Event) -> None:
    while not stop.wait(interval):
        try:
            stream.send(("hb",))
        except Exception:
            return


def _serve_session(sock: socket.socket,
                   fault_plan: "TransportFaultPlan | None" = None) -> None:
    """One coordinator connection: handshake, task, command loop."""
    from repro.sim.parallel import ShardWorker

    # The command loop below blocks in recv() with no deadline (a slow
    # coordinator is healthy); keepalive probes reap the session if the
    # coordinator host vanishes without a TCP reset, instead of leaking
    # this thread, the built rank stack, and the heartbeat thread.
    enable_keepalive(sock)
    injector = fault_plan.injector() if fault_plan is not None else None
    stream = FrameStream(sock, injector=injector)
    hb_stop = threading.Event()
    try:
        meta = server_handshake(stream, _worker_meta(),
                                timeout=_SETUP_TIMEOUT)
        interval = float(
            typing.cast(float, meta.get("heartbeat_interval", 0.5)))
        cmd = stream.recv(timeout=_SETUP_TIMEOUT)
        if cmd[0] != "task":
            raise TransportError(
                f"protocol error: expected 'task', got {cmd[0]!r}")
        task = cmd[1]
        threading.Thread(
            target=_heartbeat_loop, args=(stream, interval, hb_stop),
            daemon=True,
        ).start()
        worker = ShardWorker(task)
        batch = task.batch
        stream.send(("ready", worker.next_event()))
        while True:
            cmd = stream.recv()
            op = cmd[0]
            if op == "advance":
                msgs = _wire.unpack_frame(cmd[2]) if batch else cmd[2]
                reply = worker.advance(cmd[1], msgs)
                if batch:
                    reply = reply._replace(msgs=_wire.pack_frame(reply.msgs))
                stream.send(("reply", reply))
            elif op == "finish":
                stream.send(("result", worker.finish(cmd[1])))
                return
            else:  # "abort"
                return
    except (ConnectionLost, TransportFaultInjected, HandshakeError):
        # The coordinator went away, rejected us, or we simulated dying:
        # from this side there is nobody left to report to.
        pass
    except BaseException:
        try:
            stream.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        hb_stop.set()
        stream.close()


class WorkerServer:
    """Accept loop: one thread per coordinator session.

    ``sessions`` bounds how many connections are served before the loop
    exits (``None`` = serve until :meth:`stop`); the smoke CLI uses it
    to make worker subprocesses self-terminating.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 fault_plan: "TransportFaultPlan | None" = None,
                 sessions: "int | None" = None) -> None:
        self.fault_plan = fault_plan
        self.sessions = sessions
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._accept_thread: "threading.Thread | None" = None
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.host, self.port = self._sock.getsockname()[:2]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Run the accept loop on the calling thread until done/stopped."""
        served = 0
        self._sock.settimeout(0.25)
        try:
            while not self._stop.is_set():
                if self.sessions is not None and served >= self.sessions:
                    break
                try:
                    conn, _addr = self._sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                served += 1
                thread = threading.Thread(
                    target=_serve_session, args=(conn, self.fault_plan),
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        finally:
            try:
                self._sock.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=30.0)

    def start(self) -> "WorkerServer":
        """Run the accept loop on a background thread (tests)."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class LocalWorkerPool:
    """Spawn N ``python -m repro.sim.remote`` subprocesses on localhost.

    The multi-host topology on one machine: each worker is a separate
    process reachable only over TCP, exactly what a remote host looks
    like to the coordinator.  Used by ``repro.experiments.halo
    --backend socket --workers N``, the socket capacity benchmark, and
    the CI multi-host smoke job.  ``faults`` optionally gives one
    transport-fault spec string per worker (``None`` entries are
    healthy) -- the host-kill smoke arms only the first worker.
    """

    def __init__(self, count: int,
                 faults: "typing.Sequence[str | None] | None" = None,
                 startup_timeout: float = 30.0) -> None:
        if count < 1:
            raise ValueError("need at least one worker")
        import repro

        self.procs: list[subprocess.Popen] = []
        self.addresses: list[str] = []
        self._dir = tempfile.TemporaryDirectory(prefix="repro-workers-")
        root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        parts = [root]
        if env.get("PYTHONPATH"):
            parts.append(env["PYTHONPATH"])
        env["PYTHONPATH"] = os.pathsep.join(parts)
        port_files = []
        try:
            for i in range(count):
                port_file = os.path.join(self._dir.name, f"worker{i}.port")
                cmd = [sys.executable, "-m", "repro.sim.remote",
                       "--listen", "127.0.0.1:0", "--port-file", port_file]
                fault = (faults[i]
                         if faults is not None and i < len(faults) else None)
                if fault:
                    cmd += ["--fault", fault]
                self.procs.append(subprocess.Popen(
                    cmd, env=env,
                    stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                ))
                port_files.append(port_file)
            deadline = time.monotonic() + startup_timeout
            for i, port_file in enumerate(port_files):
                while not os.path.exists(port_file):
                    proc = self.procs[i]
                    if proc.poll() is not None:
                        raise TransportError(
                            f"worker {i} exited with rc={proc.returncode} "
                            f"before listening")
                    if time.monotonic() > deadline:
                        raise TransportError(
                            f"worker {i} did not come up within "
                            f"{startup_timeout:.0f}s")
                    time.sleep(0.05)
                with open(port_file, encoding="utf-8") as fh:
                    self.addresses.append(fh.read().strip())
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait()
        self._dir.cleanup()

    def __enter__(self) -> "LocalWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.remote",
        description="Shard worker for run_app_sharded(backend='socket').",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="bind address; port 0 picks a free port (default %(default)s)")
    parser.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound host:port here once listening "
             "(atomic rename; lets launchers wait for readiness)")
    parser.add_argument(
        "--sessions", type=int, default=None, metavar="N",
        help="exit after serving N coordinator sessions "
             "(default: serve forever)")
    parser.add_argument(
        "--fault", default=None, metavar="SPEC",
        help="deterministic transport fault for every session, e.g. "
             "'drop-after=12' or 'stall-after=30,stall=60' or 'slow=0.01'")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        host, port = parse_hostport(args.listen)
        plan = None
        if args.fault:
            from repro.faults.transport import parse_transport_fault_spec

            plan = parse_transport_fault_spec(args.fault)
        server = WorkerServer(host, port, fault_plan=plan,
                              sessions=args.sessions)
    except (ValueError, OSError) as exc:
        print(f"repro.sim.remote: {exc}", file=sys.stderr)
        return 2
    if args.port_file:
        tmp = args.port_file + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(server.address)
        os.replace(tmp, args.port_file)
    print(f"repro.sim.remote listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
