"""Generator-coroutine processes.

A :class:`Process` wraps a generator.  The generator ``yield``-s
:class:`~repro.sim.events.Event` instances; the process suspends until the
event fires, then resumes with the event's value (or with the event's
exception raised at the yield point).  A process is itself an event that
succeeds with the generator's return value, so processes can wait on each
other and be combined with ``AnyOf`` / ``AllOf``.
"""

from __future__ import annotations

import typing

from repro.sim.events import Event, Interrupt, SimulationError, Timeout

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Process(Event):
    """A running simulated activity driven by a generator."""

    __slots__ = ("generator", "_target", "name", "_send", "_throw", "_bound_resume")

    def __init__(
        self,
        engine: "Engine",
        generator: typing.Generator,
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process needs a generator, got {generator!r}; did you call "
                "the function instead of passing its generator?"
            )
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Bound-method lookups are hot enough to show in kernel profiles:
        # every resume calls send/throw, and every suspend registers the
        # resume callback, so bind them once here.
        self._send = generator.send
        self._throw = generator.throw
        self._bound_resume = self._resume
        #: The event this process is currently suspended on (None if running
        #: or finished).
        self._target: Event | None = None
        # Kick off at the current time.
        init = Event(engine)
        init.callbacks.append(self._bound_resume)  # type: ignore[union-attr]
        init._ok = True
        init._value = None
        engine._post(init)

    @property
    def is_alive(self) -> bool:
        """True until the generator has finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already finished")
        if self._target is None:
            raise SimulationError(f"{self!r} is not suspended on an event")
        # Detach from the current target and schedule the interrupt.
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
            if not target.callbacks and isinstance(target, Timeout):
                # Nothing else is waiting: withdraw the timeout so abandoned
                # guard delays do not pile up in the pending store.
                target.cancel()
        self._target = None
        carrier = Event(self.engine)
        carrier.callbacks.append(self._bound_resume)  # type: ignore[union-attr]
        carrier._ok = False
        carrier._value = Interrupt(cause)
        carrier._defused = True
        self.engine._post(carrier)

    # -- driving ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._target = None
        send = self._send
        throw = self._throw
        while True:
            try:
                if event._ok:
                    next_ev = send(event._value)
                else:
                    event._defused = True
                    next_ev = throw(typing.cast(BaseException, event._value))
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return

            if not isinstance(next_ev, Event):
                exc2 = SimulationError(
                    f"process {self.name!r} yielded {next_ev!r}, which is not "
                    "an Event (use engine.timeout(...) for delays)"
                )
                try:
                    self.generator.throw(exc2)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    self.fail(exc)
                    return
                continue
            if next_ev.engine is not self.engine:
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded an event from a "
                        "different engine"
                    )
                )
                return

            callbacks = next_ev.callbacks
            if callbacks is None:
                # Already settled: continue immediately with its outcome.
                event = next_ev
                continue
            self._target = next_ev
            callbacks.append(self._bound_resume)
            return

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name} {state} at {id(self):#x}>"
