"""CLI: live ANSI dashboard over a sweep's metrics directory.

``repro.tools.paper`` and ``repro.tools.nas`` publish their sweep state
(``sweep.json`` + ``metrics.om``) into ``--metrics-dir``; this tool tails
it from another terminal::

    python -m repro.tools.watch --metrics-dir out/metrics
    python -m repro.tools.watch --metrics-dir out/metrics --interval 0.5

``--once`` renders a single plain-ASCII snapshot to stdout and exits --
no cursor control, no TTY required -- which is how CI smoke-tests the
dashboard (and how scripts scrape a sweep's state).

The renderer is pure (payload dict in, text out), so the ``--live`` flag
of the sweep CLIs reuses it in-process.
"""

from __future__ import annotations

import argparse
import sys
import time
import typing

from repro.metrics.progress import load_status

#: Width of the progress bar in characters.
BAR_WIDTH = 40

_ANSI_CLEAR_BLOCK = "\x1b[{n}A\x1b[J"


def _bar(fraction: float, width: int = BAR_WIDTH) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def _fmt_eta(seconds: float) -> str:
    if seconds <= 0:
        return "--"
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def render_status(payload: "dict[str, object] | None") -> str:
    """Render one dashboard frame from a ``sweep.json`` payload."""
    if payload is None:
        return "watch: no sweep status published yet (missing sweep.json)"
    total = int(typing.cast(int, payload.get("total", 0)))
    done = int(typing.cast(int, payload.get("done", 0)))
    cached = int(typing.cast(int, payload.get("cached", 0)))
    queued = int(typing.cast(int, payload.get("queued", total - done)))
    frac = done / total if total else 0.0
    finished = bool(payload.get("finished"))
    state = "done" if finished else "running"
    lines = [
        f"sweep {payload.get('label', '?')} [{state}]",
        f"  [{_bar(frac)}] {done}/{total} tasks ({frac * 100:.0f}%)",
        f"  queued {queued}   cached {cached} "
        f"({float(typing.cast(float, payload.get('cache_ratio', 0.0))) * 100:.0f}% hit)"
        f"   jobs {payload.get('jobs', 1)}",
        f"  elapsed {float(typing.cast(float, payload.get('elapsed_s', 0.0))):.1f}s"
        f"   avg task {float(typing.cast(float, payload.get('avg_task_s', 0.0))):.3f}s"
        f"   worker util "
        f"{float(typing.cast(float, payload.get('utilization', 0.0))) * 100:.0f}%",
        f"  ETA {_fmt_eta(float(typing.cast(float, payload.get('eta_s', 0.0))))}"
        + (f"   last: {payload['last_task']}" if payload.get("last_task") else ""),
    ]
    return "\n".join(lines)


class LiveRenderer:
    """In-place ANSI repaint of the dashboard block (for ``--live``)."""

    def __init__(self, stream: "typing.TextIO | None" = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._lines = 0

    def update(self, payload: "dict[str, object] | None") -> None:
        text = render_status(payload)
        if self._lines:
            self.stream.write(_ANSI_CLEAR_BLOCK.format(n=self._lines))
        self.stream.write(text + "\n")
        self.stream.flush()
        self._lines = text.count("\n") + 1


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.watch",
        description="Tail a sweep's metrics directory as a live dashboard.",
    )
    parser.add_argument("--metrics-dir", default=".",
                        help="directory a sweep publishes sweep.json into")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh period in seconds (live mode)")
    parser.add_argument("--once", action="store_true",
                        help="print one plain snapshot to stdout and exit "
                        "(no TTY/ANSI; CI-friendly)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="live mode: give up after this many seconds "
                        "without the sweep finishing")
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if args.once:
        payload = load_status(args.metrics_dir)
        print(render_status(payload))
        return 0 if payload is not None else 1

    renderer = LiveRenderer()
    deadline = (time.monotonic() + args.timeout
                if args.timeout is not None else None)
    try:
        while True:
            payload = load_status(args.metrics_dir)
            renderer.update(payload)
            if payload is not None and payload.get("finished"):
                return 0
            if deadline is not None and time.monotonic() > deadline:
                print("watch: timeout before the sweep finished",
                      file=sys.stderr)
                return 1
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
