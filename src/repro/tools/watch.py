"""CLI: live ANSI dashboard over a sweep's metrics directory or service.

``repro.tools.paper`` and ``repro.tools.nas`` publish their sweep state
(``sweep.json`` + ``metrics.om``) into ``--metrics-dir``; this tool tails
it from another terminal::

    python -m repro.tools.watch --metrics-dir out/metrics
    python -m repro.tools.watch --metrics-dir out/metrics --interval 0.5

The analysis service (``repro.tools.serve``) publishes the same payload
over HTTP; ``--url`` polls it instead of the filesystem, making this
dashboard just one more service client::

    python -m repro.tools.watch --url http://localhost:8080
    python -m repro.tools.watch --url http://localhost:8080/v1/jobs/job-00000003/progress

``--once`` renders a single plain-ASCII snapshot to stdout and exits --
no cursor control, no TTY required -- which is how CI smoke-tests the
dashboard (and how scripts scrape a sweep's state).  It exits nonzero
when no status is available *or* when the observed sweep finished with
failed cells, so scripts can gate on a clean sweep.

The renderer is pure (payload dict in, text out), so the ``--live`` flag
of the sweep CLIs reuses it in-process.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import typing
import urllib.error
import urllib.parse
import urllib.request

from repro.metrics.progress import load_status

#: Width of the progress bar in characters.
BAR_WIDTH = 40

_ANSI_CLEAR_BLOCK = "\x1b[{n}A\x1b[J"


def _bar(fraction: float, width: int = BAR_WIDTH) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def _fmt_eta(seconds: float) -> str:
    if seconds <= 0:
        return "--"
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def load_status_url(url: str) -> "dict[str, object] | None":
    """Fetch a sweep.json-schema payload from a service progress URL.

    A bare service URL (no ``/v1/`` path) is completed to the
    service-level ``/v1/progress`` endpoint; a full per-job progress URL
    is fetched as given.  Returns ``None`` when the service is
    unreachable or answers with a non-JSON/non-200 response.
    """
    split = urllib.parse.urlsplit(url)
    if not split.scheme:
        url = "http://" + url
        split = urllib.parse.urlsplit(url)
    if split.path in ("", "/"):
        url = url.rstrip("/") + "/v1/progress"
    try:
        with urllib.request.urlopen(url, timeout=5.0) as resp:
            if resp.status != 200:
                return None
            return json.loads(resp.read().decode("utf-8"))
    except (OSError, urllib.error.URLError, json.JSONDecodeError,
            ValueError):
        return None


def render_status(payload: "dict[str, object] | None") -> str:
    """Render one dashboard frame from a ``sweep.json`` payload."""
    if payload is None:
        return "watch: no sweep status published yet (missing sweep.json)"
    total = int(typing.cast(int, payload.get("total", 0)))
    done = int(typing.cast(int, payload.get("done", 0)))
    cached = int(typing.cast(int, payload.get("cached", 0)))
    failed = int(typing.cast(int, payload.get("failed", 0)))
    queued = int(typing.cast(int, payload.get("queued", total - done)))
    frac = done / total if total else 0.0
    finished = bool(payload.get("finished"))
    state = "done" if finished else "running"
    lines = [
        f"sweep {payload.get('label', '?')} [{state}]",
        f"  [{_bar(frac)}] {done}/{total} tasks ({frac * 100:.0f}%)",
        f"  queued {queued}   cached {cached} "
        f"({float(typing.cast(float, payload.get('cache_ratio', 0.0))) * 100:.0f}% hit)"
        + (f"   failed {failed}" if failed else "")
        + f"   jobs {payload.get('jobs', 1)}",
        f"  elapsed {float(typing.cast(float, payload.get('elapsed_s', 0.0))):.1f}s"
        f"   avg task {float(typing.cast(float, payload.get('avg_task_s', 0.0))):.3f}s"
        f"   worker util "
        f"{float(typing.cast(float, payload.get('utilization', 0.0))) * 100:.0f}%",
        f"  ETA {_fmt_eta(float(typing.cast(float, payload.get('eta_s', 0.0))))}"
        + (f"   last: {payload['last_task']}" if payload.get("last_task") else ""),
    ]
    stages = payload.get("stages")
    if isinstance(stages, dict) and stages:
        # Per-stage span latency published by a tracing-enabled service
        # (see docs/observability.md): category -> {count, avg_ms, total_s}.
        worst = sorted(stages.items(),
                       key=lambda kv: -float(kv[1].get("total_s", 0.0)))[:4]
        lines.append("  stages " + "   ".join(
            f"{cat} {float(st.get('avg_ms', 0.0)):.1f}ms"
            f"x{int(st.get('count', 0))}"
            for cat, st in worst))
        coord = _coordinator_line(stages)
        if coord is not None:
            lines.append(coord)
    return "\n".join(lines)


def _coordinator_line(stages: "dict[str, dict]") -> "str | None":
    """Sharded-run coordinator health from the ``coord.*`` span stages.

    A traced sharded run publishes one ``coord.fence`` span per
    synchronization round plus ``coord.dispatch`` (grant/collect
    bookkeeping) and ``coord.wait`` (blocked on shard workers).  Fence +
    dispatch is the coordinator's own work; the three together span the
    whole coordination loop, so the share needs no external clock.
    """
    fence = stages.get("coord.fence")
    if not isinstance(fence, dict):
        return None
    rounds = int(fence.get("count", 0))
    active = float(fence.get("total_s", 0.0))
    loop = active
    for category in ("coord.dispatch", "coord.wait"):
        stage = stages.get(category)
        seconds = (float(stage.get("total_s", 0.0))
                   if isinstance(stage, dict) else 0.0)
        loop += seconds
        if category == "coord.dispatch":
            active += seconds
    if not rounds or loop <= 0.0:
        return None
    return (f"  coordinator {rounds} fence rounds"
            f" @ {rounds / loop:,.0f}/s"
            f"   {active / loop * 100:.0f}% coordinator share")


class LiveRenderer:
    """In-place ANSI repaint of the dashboard block (for ``--live``)."""

    def __init__(self, stream: "typing.TextIO | None" = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._lines = 0

    def update(self, payload: "dict[str, object] | None") -> None:
        text = render_status(payload)
        if self._lines:
            self.stream.write(_ANSI_CLEAR_BLOCK.format(n=self._lines))
        self.stream.write(text + "\n")
        self.stream.flush()
        self._lines = text.count("\n") + 1


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.watch",
        description="Tail a sweep's metrics directory as a live dashboard.",
    )
    parser.add_argument("--metrics-dir", default=".",
                        help="directory a sweep publishes sweep.json into")
    parser.add_argument("--url", default=None,
                        help="poll an analysis service's progress endpoint "
                        "instead of a directory (a bare http://host:port "
                        "is completed to /v1/progress; a per-job progress "
                        "URL works too)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh period in seconds (live mode)")
    parser.add_argument("--once", action="store_true",
                        help="print one plain snapshot to stdout and exit "
                        "(no TTY/ANSI; CI-friendly); exits nonzero when no "
                        "status exists or the sweep finished with failed "
                        "cells")
    parser.add_argument("--timeout", type=float, default=None,
                        help="live mode: give up after this many seconds "
                        "without the sweep finishing")
    parser.add_argument("--max-fetch-failures", type=int, default=10,
                        metavar="N",
                        help="live --url mode: exit with status 2 after N "
                        "consecutive failed fetches instead of rendering "
                        "an empty dashboard forever (default %(default)s; "
                        "0 disables the limit)")
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)

    def load() -> "dict[str, object] | None":
        if args.url is not None:
            return load_status_url(args.url)
        return load_status(args.metrics_dir)

    if args.once:
        payload = load()
        print(render_status(payload))
        if payload is None:
            return 1
        if payload.get("finished") and int(
                typing.cast(int, payload.get("failed", 0))):
            return 1
        return 0

    renderer = LiveRenderer()
    deadline = (time.monotonic() + args.timeout
                if args.timeout is not None else None)
    # --url mode: every failed fetch used to render as an empty dashboard
    # forever; count consecutive failures (any success resets) and bail
    # out loudly once the service is clearly gone.
    fetch_failures = 0
    try:
        while True:
            payload = load()
            renderer.update(payload)
            if args.url is not None:
                fetch_failures = 0 if payload is not None \
                    else fetch_failures + 1
                if (args.max_fetch_failures > 0
                        and fetch_failures >= args.max_fetch_failures):
                    print(
                        f"watch: {fetch_failures} consecutive failed "
                        f"fetches from {args.url} (service down or URL "
                        f"wrong); giving up",
                        file=sys.stderr)
                    return 2
            if payload is not None and payload.get("finished"):
                failed = int(typing.cast(int, payload.get("failed", 0)))
                return 1 if failed else 0
            if deadline is not None and time.monotonic() > deadline:
                print("watch: timeout before the sweep finished",
                      file=sys.stderr)
                return 1
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
