"""CLI: the Sec.-3 overlap microbenchmark.

Example::

    python -m repro.tools.micro --pattern isend_recv --size 1048576 \\
        --library openmpi --leave-pinned --computes 0,0.5e-3,1e-3,1.5e-3
    python -m repro.tools.micro --pattern isend_irecv --size 10240 --plot
"""

from __future__ import annotations

import argparse
import typing

from repro.analysis.tables import render_micro_series
from repro.analysis.textplot import ascii_plot
from repro.experiments.micro import PATTERNS, overlap_sweep
from repro.mpisim.config import MpiConfig, mvapich2_like, openmpi_like


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.micro",
        description="Two-rank computation-communication overlap sweep.",
    )
    parser.add_argument("--pattern", choices=PATTERNS, default="isend_irecv")
    parser.add_argument("--size", type=float, default=1024 * 1024,
                        help="message size in bytes")
    parser.add_argument("--computes", default="0,0.25e-3,0.5e-3,1e-3,1.5e-3",
                        help="comma-separated inserted-computation seconds")
    parser.add_argument("--library", choices=["openmpi", "mvapich2", "rput"],
                        default="openmpi")
    parser.add_argument("--leave-pinned", action="store_true",
                        help="Open MPI: select the direct-RDMA rendezvous")
    parser.add_argument("--iters", type=int, default=50)
    parser.add_argument("--side", choices=["sender", "receiver", "both"],
                        default="both")
    parser.add_argument("--plot", action="store_true",
                        help="ASCII-plot the max-overlap curves")
    return parser


def _config(args: argparse.Namespace) -> MpiConfig:
    if args.library == "openmpi":
        return openmpi_like(leave_pinned=args.leave_pinned)
    if args.library == "mvapich2":
        return mvapich2_like()
    return MpiConfig(name="rput", rndv_mode="rput")


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    computes = [float(c) for c in args.computes.split(",") if c.strip()]
    config = _config(args)
    points = overlap_sweep(
        args.pattern, args.size, computes, config, iters=args.iters
    )
    sides = ["sender", "receiver"] if args.side == "both" else [args.side]
    for side in sides:
        print(render_micro_series(
            points, side,
            f"{args.pattern} {int(args.size)}B / {config.name} ({side})",
        ))
        print()
    if args.plot and len(computes) >= 2:
        series = {
            f"{side} max%": [p.max_pct(side) for p in points] for side in sides
        }
        print(ascii_plot(series, [c * 1e3 for c in computes],
                         title="max overlap (%) vs compute (ms)"))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
