"""CLI: run NAS benchmark cells and write per-process overlap reports.

``--np`` takes a single rank count or a comma-separated grid; grid cells
are independent simulations, so they fan across a process pool
(``--jobs``) and are cached on disk by content (``.repro_cache`` by
default; see ``docs/performance.md``).

Example::

    python -m repro.tools.nas --benchmark lu --klass A --np 4 --niter 2 \\
        --report-dir out/
    python -m repro.tools.nas --benchmark sp --klass A --np 9 --modified
    python -m repro.tools.nas --benchmark mg --klass B --np 8 --nonblocking
    python -m repro.tools.nas --benchmark cg --klass A --np 4,8,16 --jobs 3
"""

from __future__ import annotations

import argparse
import json
import pathlib
import typing

from repro.analysis.tables import render_size_breakdown
from repro.core.report import OverlapReport
from repro.experiments.nas_char import MPI_BENCHMARKS
from repro.experiments.runner import FailedTask, ResultCache, Task, run_tasks


def _run_cell(
    benchmark: str,
    klass: str,
    nprocs: int,
    niter: int,
    library: str,
    modified: bool,
    nonblocking: bool,
    emit_metrics: bool = False,
    faults: "str | None" = None,
    fault_seed: int = 0,
    shards: "int | None" = None,
    shard_sync: str = "window",
) -> dict:
    """Worker: one (benchmark, class, np) cell; returns a plain-data payload.

    Module-level and returning only picklable values (report dicts, not
    ``RunResult`` -- that holds the live fabric) so it can cross a process
    pool and live in the result cache.  With ``emit_metrics`` the run
    carries a :class:`~repro.metrics.MetricsRegistry` and the payload
    gains the rendered OpenMetrics text plus the JSON snapshot.
    ``faults`` is a :func:`repro.faults.plan.parse_fault_spec` string;
    packet faults auto-arm the reliable transport, and every faulted run
    is guarded by a watchdog so a wedged cell terminates with a partial
    report plus diagnostic instead of hanging the sweep.
    """
    import dataclasses as _dc

    from repro.armci import ArmciConfig, run_armci_app
    from repro.mpisim.config import mvapich2_like, openmpi_like
    from repro.nas.mg import mg_app
    from repro.nas.sp import sp_app
    from repro.runtime.launcher import run_app
    from repro.tracing.span import current_tracer

    # Installed ambiently by run_tasks (never passed in the argument
    # tuple: that tuple is the content-hash cache key shared with the
    # service, and a tracer argument would invalidate every cached cell).
    tracer = current_tracer()

    registry = None
    if emit_metrics:
        from repro.metrics import MetricsRegistry

        registry = MetricsRegistry()

    params = None
    watchdog = None
    plan = None
    if faults:
        from repro.faults import FaultPlan  # noqa: F401 (import check)
        from repro.faults.plan import parse_fault_spec
        from repro.faults.watchdog import WatchdogConfig
        from repro.netsim.params import NetworkParams

        plan = parse_fault_spec(faults, seed=fault_seed)
        params = NetworkParams(faults=plan)
        watchdog = WatchdogConfig(stall_sim_time=0.05, max_sim_time=60.0)

    label = f"{benchmark}.{klass}.{nprocs}"
    if benchmark == "mg":
        if shards is not None:
            raise ValueError(
                "--shards is not supported for mg: the ARMCI runtime keeps "
                "a cross-rank shared region directory that cannot be "
                "partitioned (see docs/performance.md)"
            )
        result = run_armci_app(
            mg_app, nprocs, config=ArmciConfig(), params=params, label=label,
            app_args=(klass, niter, None, not nonblocking),
            metrics=registry,
        )
    else:
        app, config_factory = MPI_BENCHMARKS[benchmark]
        if library == "openmpi":
            config = openmpi_like()
        elif library == "mvapich2":
            config = mvapich2_like()
        else:
            config = config_factory()
        if plan is not None and plan.has_packet_faults and config.resilience is None:
            # A lossy fabric without retransmission cannot complete: arm
            # the reliable transport with its defaults.
            from repro.faults.plan import ResilienceParams

            config = _dc.replace(config, resilience=ResilienceParams())
        if benchmark == "sp":
            app_args: tuple = (klass, niter, None, modified)
            app = sp_app
        elif benchmark == "lu":
            app_args = (klass, niter, None, None)
        elif benchmark == "ep":
            app_args = (klass, None, 1e-3)
        else:
            app_args = (klass, niter, None)
        if shards is not None and (registry is not None or watchdog is not None):
            raise ValueError(
                "--shards cannot be combined with --metrics-dir or --faults "
                "watchdogs: both observe one engine (see docs/performance.md)"
            )
        result = run_app(app, nprocs, config=config, params=params, label=label,
                         app_args=app_args, metrics=registry,
                         watchdog=watchdog, shards=shards,
                         shard_sync=shard_sync, tracer=tracer)

    payload = {
        "label": label,
        "elapsed": result.elapsed,
        "reports": [
            rep.to_dict() if rep is not None else None
            for rep in result.reports
        ],
    }
    injector = getattr(result.fabric, "injector", None)
    if injector is not None:
        payload["faults"] = {
            "spec": faults,
            "seed": fault_seed,
            "packets_dropped": injector.packets_dropped,
            "packets_duplicated": injector.packets_duplicated,
            "packets_reordered": injector.packets_reordered,
        }
    diag = getattr(result, "watchdog", None)
    if diag is not None:
        payload["watchdog"] = diag.render_text()
    if registry is not None:
        from repro.metrics import render_openmetrics

        payload["openmetrics"] = render_openmetrics(registry)
        payload["metrics_snapshot"] = registry.snapshot()
    return payload


def _parse_np(text: str) -> list[int]:
    try:
        values = [int(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--np wants an integer or comma-separated integers, got {text!r}"
        ) from None
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(f"invalid --np grid {text!r}")
    return values


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.nas",
        description="Run a NAS benchmark on the simulated cluster with the "
        "overlap instrumentation enabled.",
    )
    parser.add_argument("--benchmark", required=True,
                        choices=sorted(MPI_BENCHMARKS) + ["mg"])
    parser.add_argument("--klass", default="A", choices=["S", "W", "A", "B"],
                        help="NPB problem class")
    parser.add_argument("--np", dest="nprocs", type=_parse_np, default=[4],
                        help="simulated rank count, or a comma-separated "
                        "grid (e.g. 4,9,16) run as independent cells")
    parser.add_argument("--niter", type=int, default=2,
                        help="iterations (scaled down from the NPB defaults)")
    parser.add_argument("--library", choices=["paper", "openmpi", "mvapich2"],
                        default="paper",
                        help="'paper' uses the pairing from the paper's Sec. 4")
    parser.add_argument("--modified", action="store_true",
                        help="SP only: apply the Iprobe overlap fix")
    parser.add_argument("--nonblocking", action="store_true",
                        help="MG only: use non-blocking ARMCI calls")
    parser.add_argument("--report-dir", default=None,
                        help="write per-process JSON reports here")
    parser.add_argument("--sizes", action="store_true",
                        help="also print the message-size breakdown")
    parser.add_argument("--rank", type=int, default=0,
                        help="which rank's report to print")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for a --np grid (1 = serial)")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="inject fabric/instrumentation faults, e.g. "
                        "'drop=0.05,dup=0.01,reorder=0.02' or "
                        "'events=0.2,ring=256' (see repro.faults.plan); "
                        "packet faults auto-arm the reliable transport and "
                        "a watchdog")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the deterministic fault streams")
    parser.add_argument("--on-error", choices=["raise", "continue"],
                        default="raise",
                        help="'continue' turns a crashed/failed grid cell "
                        "into a reported failure instead of aborting the "
                        "sweep")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the on-disk result "
                        "cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default: "
                        "$REPRO_CACHE_DIR or .repro_cache)")
    parser.add_argument("--metrics-dir", default=None,
                        help="publish live sweep status here and write one "
                        "OpenMetrics file + JSON metrics snapshot per cell "
                        "(tail with `python -m repro.tools.watch`)")
    parser.add_argument("--shards", type=int, default=None,
                        help="run each cell on the sharded parallel-DES "
                        "engine with this many worker processes (not "
                        "available for mg/ARMCI, --metrics-dir, or fault "
                        "watchdogs; reports are bit-identical to the "
                        "single-process run)")
    parser.add_argument("--shard-sync", choices=["window", "null"],
                        default="window",
                        help="shard synchronization protocol (default: "
                        "window barriers; null = asynchronous pacing)")
    parser.add_argument("--trace-dir", default=None,
                        help="record host-time spans for the whole sweep "
                        "(runner, launcher, coordinator, shards) and write "
                        "one merged Perfetto trace_event JSON here; inspect "
                        "with `python -m repro.tools.explain`")
    parser.add_argument("--live", action="store_true",
                        help="render the sweep dashboard in-place on stderr "
                        "while cells run")
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if args.shards is not None:
        if args.shards < 1:
            make_parser().error("--shards must be >= 1")
        if args.benchmark == "mg":
            make_parser().error(
                "--shards is not supported for mg: the ARMCI runtime keeps "
                "a cross-rank shared region directory that cannot be "
                "partitioned")
        if args.metrics_dir is not None or args.faults is not None:
            make_parser().error(
                "--shards cannot be combined with --metrics-dir or --faults")
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    progress = None
    if args.metrics_dir or args.live:
        from repro.metrics import SweepProgress
        on_update = None
        if args.live:
            from repro.tools.watch import LiveRenderer
            on_update = LiveRenderer().update
        progress = SweepProgress(args.metrics_dir, label=f"nas.{args.benchmark}",
                                 on_update=on_update)
    tracer = None
    sp_root = None
    if args.trace_dir:
        from repro.tracing import Tracer

        tracer = Tracer(process="nas sweep")
        sp_root = tracer.begin(f"nas {args.benchmark}", "runner.root",
                               klass=args.klass, cells=len(args.nprocs),
                               jobs=args.jobs)
    tasks = [
        Task(_run_cell, (args.benchmark, args.klass, nprocs, args.niter,
                         args.library, args.modified, args.nonblocking,
                         args.metrics_dir is not None,
                         args.faults, args.fault_seed,
                         args.shards, args.shard_sync))
        for nprocs in args.nprocs
    ]
    payloads = run_tasks(tasks, jobs=args.jobs, cache=cache, progress=progress,
                         on_error=args.on_error, tracer=tracer)
    if tracer is not None:
        from repro.tracing import save_trace

        assert sp_root is not None
        sp_root.end()
        tdir = pathlib.Path(args.trace_dir)
        tdir.mkdir(parents=True, exist_ok=True)
        trace_path = tdir / f"nas.{args.benchmark}.trace.json"
        save_trace(trace_path, tracer)
        print(f"wrote span trace to {trace_path}")

    failed = 0
    for i, payload in enumerate(payloads):
        if isinstance(payload, FailedTask):
            failed += 1
            if i:
                print("\n" + "=" * 66 + "\n")
            print(f"cell {payload.name} FAILED: {payload.error}")
            continue
        reports = [
            OverlapReport.from_dict(d) if d is not None else None
            for d in payload["reports"]
        ]
        if i:
            print("\n" + "=" * 66 + "\n")
        report = reports[args.rank]
        assert report is not None
        print(report.render_text())
        if args.sizes:
            print()
            print(render_size_breakdown(report, "by message size:"))
        print(f"\njob wall time: {payload['elapsed'] * 1e3:.3f} ms (simulated)")
        if "faults" in payload:
            f = payload["faults"]
            print(f"faults ({f['spec']!r}, seed {f['seed']}): "
                  f"dropped={f['packets_dropped']} "
                  f"duplicated={f['packets_duplicated']} "
                  f"reordered={f['packets_reordered']}")
        if "watchdog" in payload:
            print(payload["watchdog"])
            print("(reports above are PARTIAL: the watchdog stopped this run)")

        if args.report_dir:
            out = pathlib.Path(args.report_dir)
            out.mkdir(parents=True, exist_ok=True)
            for rank, rep in enumerate(reports):
                if rep is not None:
                    rep.save(out / f"{payload['label']}.rank{rank}.json")
            print(f"wrote {len(reports)} reports to {out}/")

        if args.metrics_dir and "openmetrics" in payload:
            mdir = pathlib.Path(args.metrics_dir)
            mdir.mkdir(parents=True, exist_ok=True)
            om_path = mdir / f"{payload['label']}.om"
            om_path.write_text(payload["openmetrics"], encoding="utf-8")
            with open(mdir / f"{payload['label']}.metrics.json", "w",
                      encoding="utf-8") as fh:
                json.dump(payload["metrics_snapshot"], fh, indent=1)
            print(f"wrote framework metrics to {om_path}")
    if cache is not None and cache.hits:
        print(f"({cache.hits} of {len(tasks)} cells served from cache)")
    if failed:
        print(f"{failed} of {len(tasks)} cells failed")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
