"""CLI: run one NAS benchmark cell and write per-process overlap reports.

Example::

    python -m repro.tools.nas --benchmark lu --klass A --np 4 --niter 2 \\
        --report-dir out/
    python -m repro.tools.nas --benchmark sp --klass A --np 9 --modified
    python -m repro.tools.nas --benchmark mg --klass B --np 8 --nonblocking
"""

from __future__ import annotations

import argparse
import pathlib
import typing

from repro.analysis.tables import render_size_breakdown
from repro.armci import ArmciConfig, run_armci_app
from repro.experiments.nas_char import MPI_BENCHMARKS
from repro.mpisim.config import mvapich2_like, openmpi_like
from repro.nas.mg import mg_app
from repro.nas.sp import sp_app
from repro.runtime.launcher import run_app


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.nas",
        description="Run a NAS benchmark on the simulated cluster with the "
        "overlap instrumentation enabled.",
    )
    parser.add_argument("--benchmark", required=True,
                        choices=sorted(MPI_BENCHMARKS) + ["mg"])
    parser.add_argument("--klass", default="A", choices=["S", "W", "A", "B"],
                        help="NPB problem class")
    parser.add_argument("--np", dest="nprocs", type=int, default=4,
                        help="number of simulated ranks")
    parser.add_argument("--niter", type=int, default=2,
                        help="iterations (scaled down from the NPB defaults)")
    parser.add_argument("--library", choices=["paper", "openmpi", "mvapich2"],
                        default="paper",
                        help="'paper' uses the pairing from the paper's Sec. 4")
    parser.add_argument("--modified", action="store_true",
                        help="SP only: apply the Iprobe overlap fix")
    parser.add_argument("--nonblocking", action="store_true",
                        help="MG only: use non-blocking ARMCI calls")
    parser.add_argument("--report-dir", default=None,
                        help="write per-process JSON reports here")
    parser.add_argument("--sizes", action="store_true",
                        help="also print the message-size breakdown")
    parser.add_argument("--rank", type=int, default=0,
                        help="which rank's report to print")
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    label = f"{args.benchmark}.{args.klass}.{args.nprocs}"

    if args.benchmark == "mg":
        result = run_armci_app(
            mg_app, args.nprocs, config=ArmciConfig(), label=label,
            app_args=(args.klass, args.niter, None, not args.nonblocking),
        )
    else:
        app, config_factory = MPI_BENCHMARKS[args.benchmark]
        if args.library == "openmpi":
            config = openmpi_like()
        elif args.library == "mvapich2":
            config = mvapich2_like()
        else:
            config = config_factory()
        if args.benchmark == "sp":
            app_args: tuple = (args.klass, args.niter, None, args.modified)
            app = sp_app
        elif args.benchmark == "lu":
            app_args = (args.klass, args.niter, None, None)
        elif args.benchmark == "ep":
            app_args = (args.klass, None, 1e-3)
        else:
            app_args = (args.klass, args.niter, None)
        result = run_app(app, args.nprocs, config=config, label=label,
                         app_args=app_args)

    report = result.report(args.rank)
    print(report.render_text())
    if args.sizes:
        print()
        print(render_size_breakdown(report, "by message size:"))
    print(f"\njob wall time: {result.elapsed * 1e3:.3f} ms (simulated)")

    if args.report_dir:
        out = pathlib.Path(args.report_dir)
        out.mkdir(parents=True, exist_ok=True)
        for rank, rep in enumerate(result.reports):
            if rep is not None:
                rep.save(out / f"{label}.rank{rank}.json")
        print(f"wrote {len(result.reports)} reports to {out}/")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
