"""``repro.tools.explain`` -- critical-path breakdown of a merged trace.

Consumes the Perfetto ``trace_event`` JSON written by ``--trace-dir``
runs (or the service's ``/v1/jobs/<id>/trace`` page, saved to a file)
and prints where the wall-clock went::

    python -m repro.tools.explain traces/nas.lu.trace.json

``--check`` validates the trace structurally (unclosed spans, negative
or non-finite durations, non-monotonic per-process ordering, missing
process names) and exits non-zero on problems -- CI runs this against
the sharded-smoke trace artifact.  ``--json`` emits the machine-readable
summary instead of the table.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.tracing import explain_trace, render_explain, validate_trace


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.explain",
        description="Attribute a merged span trace's wall-clock to "
                    "named stages (shard compute, fence wait, channel "
                    "I/O, queue wait, ...).")
    parser.add_argument("trace", help="merged Perfetto trace JSON file")
    parser.add_argument("--check", action="store_true",
                        help="validate trace structure; exit 1 on problems")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the summary as JSON")
    parser.add_argument("--min-categorized", type=float, default=None,
                        metavar="FRAC",
                        help="fail unless at least FRAC (0..1) of the "
                             "wall-clock is attributed to named stages")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        with open(args.trace, "r", encoding="utf-8") as fh:
            trace = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"explain: cannot read trace {args.trace!r}: {exc}",
              file=sys.stderr)
        return 2
    if args.check:
        problems = validate_trace(trace)
        if problems:
            for problem in problems:
                print(f"explain: INVALID: {problem}", file=sys.stderr)
            return 1
        print(f"explain: trace {args.trace} is structurally valid")
        return 0
    try:
        summary = explain_trace(trace)
    except ValueError as exc:
        print(f"explain: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_explain(summary))
    if (args.min_categorized is not None
            and float(summary["categorized_frac"]) < args.min_categorized):
        print(f"explain: only {float(summary['categorized_frac']):.1%} of "
              f"wall-clock categorized (need "
              f"{args.min_categorized:.1%})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
