"""CLI: render saved overlap reports.

Example::

    python -m repro.tools.report out/lu.A.4.rank0.json --sizes
    python -m repro.tools.report out/*.json --aggregate
    python -m repro.tools.report --diff before.json after.json
"""

from __future__ import annotations

import argparse
import typing

from repro.analysis.tables import render_size_breakdown
from repro.core.diff import diff_reports, render_diff
from repro.core.measures import OverlapMeasures
from repro.core.report import OverlapReport, aggregate_reports


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.report",
        description="Render per-process overlap report files.",
    )
    parser.add_argument("files", nargs="*", help="report JSON files")
    parser.add_argument("--sizes", action="store_true",
                        help="include the message-size breakdown")
    parser.add_argument("--aggregate", action="store_true",
                        help="also print the merged job-wide measures")
    parser.add_argument("--diff", nargs=2, metavar=("BEFORE", "AFTER"),
                        help="compare two reports (tuning workflow)")
    return parser


def _render_aggregate(measures: OverlapMeasures) -> str:
    return (
        f"aggregate over all ranks:\n"
        f"  data transfer time       {measures.data_transfer_time:.6f} s\n"
        f"  overlap bounds           [{measures.min_overlap_pct:.1f}%, "
        f"{measures.max_overlap_pct:.1f}%]\n"
        f"  non-overlapped (min)     {measures.min_nonoverlapped_time:.6f} s\n"
        f"  transfers                {measures.transfer_count}"
    )


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if args.diff:
        before = OverlapReport.load(args.diff[0])
        after = OverlapReport.load(args.diff[1])
        print(render_diff(diff_reports(before, after),
                          title=f"{args.diff[0]} -> {args.diff[1]}"))
        return 0
    if not args.files:
        make_parser().print_usage()
        return 2
    reports = [OverlapReport.load(path) for path in args.files]
    for report in reports:
        print(report.render_text())
        if args.sizes:
            print(render_size_breakdown(report))
        print()
    if args.aggregate and reports:
        print(_render_aggregate(aggregate_reports(reports)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
