"""CLI: one-command paper reproduction.

Runs every figure's experiment driver directly (no pytest needed) and
writes a consolidated ``PAPER_RESULTS.md``.  Sizes are the bench-suite
defaults; pass ``--quick`` for a fast smoke pass.

Figures are independent, so they fan across a process pool (``--jobs``)
and their rendered text is cached on disk keyed by content
(``.repro_cache`` by default; see ``docs/performance.md``).  A rerun
after an interruption, or with a different ``--only`` subset, only
simulates what is missing.

Example::

    python -m repro.tools.paper --out PAPER_RESULTS.md
    python -m repro.tools.paper --quick --only fig05,fig19
    python -m repro.tools.paper --jobs 4 --no-cache
"""

from __future__ import annotations

import argparse
import os
import time
import typing

from repro.analysis.tables import (
    render_micro_series,
    render_nas_char,
    render_overhead,
    render_sp_tuning,
)
from repro.experiments.faultmatrix import fault_matrix, render_fault_matrix
from repro.experiments.micro import overlap_sweep
from repro.experiments.nas_char import characterize_matrix, characterize_mg
from repro.experiments.overhead import overhead_suite
from repro.experiments.runner import ResultCache, Task, run_tasks
from repro.experiments.sp_tuning import sp_tuning
from repro.mpisim.config import openmpi_like

MB = 1024 * 1024
LONG_SWEEP = [0.0, 0.5e-3, 1.0e-3, 1.5e-3]
SHORT_SWEEP = [0.0, 10e-6, 20e-6, 40e-6]


def _micro_fig(fig: str, pattern: str, nbytes: float, leave_pinned: bool,
               side: str, sweep: list, iters: int) -> str:
    points = overlap_sweep(
        pattern, nbytes, sweep, openmpi_like(leave_pinned=leave_pinned),
        iters=iters,
    )
    return render_micro_series(points, side, f"{fig} ({side}, {pattern})")


def build_sections(
    quick: bool, shards: int | None = None
) -> "dict[str, typing.Callable[[], str]]":
    iters = 10 if quick else 40
    niter = 1 if quick else 2
    klasses = ["S", "A"] if quick else ["S", "W", "A"]
    #: Extra kwargs for the MPI NAS characterization figures; ``--shards``
    #: routes those cells through the sharded engine (bit-identical
    #: reports, so figure text is unchanged -- this is a wall-clock knob).
    nas_kw: dict = {} if shards is None else {"shards": shards}

    return {
        "fig03": lambda: _micro_fig("Fig 3: eager 10KB", "isend_irecv",
                                    10 * 1024, False, "sender", SHORT_SWEEP, iters),
        "fig04": lambda: _micro_fig("Fig 4: 1MB pipelined", "isend_recv",
                                    MB, False, "sender", LONG_SWEEP, iters),
        "fig05": lambda: _micro_fig("Fig 5: 1MB direct", "isend_recv",
                                    MB, True, "sender", LONG_SWEEP, iters),
        "fig06": lambda: _micro_fig("Fig 6: 1MB pipelined", "send_irecv",
                                    MB, False, "receiver", LONG_SWEEP, iters),
        "fig07": lambda: _micro_fig("Fig 7: 1MB direct", "send_irecv",
                                    MB, True, "receiver", LONG_SWEEP, iters),
        "fig08": lambda: _micro_fig("Fig 8: 1MB pipelined", "isend_irecv",
                                    MB, False, "sender", LONG_SWEEP, iters),
        "fig09": lambda: _micro_fig("Fig 9: 1MB direct", "isend_irecv",
                                    MB, True, "sender", LONG_SWEEP, iters),
        "fig10": lambda: render_nas_char(
            characterize_matrix("bt", klasses, [4, 9], niter=niter, **nas_kw),
            "Fig 10: NAS BT / Open MPI"),
        "fig11": lambda: render_nas_char(
            characterize_matrix("cg", klasses, [4, 8], niter=niter, **nas_kw),
            "Fig 11: NAS CG / Open MPI"),
        "fig12": lambda: render_nas_char(
            characterize_matrix("lu", klasses, [4, 8], niter=niter, **nas_kw),
            "Fig 12: NAS LU / MVAPICH2"),
        "fig13": lambda: render_nas_char(
            characterize_matrix("ft", klasses, [4, 8], niter=niter, **nas_kw),
            "Fig 13: NAS FT / MVAPICH2"),
        "fig14_18": lambda: render_sp_tuning(
            [sp_tuning("A", n, niter=niter) for n in (4, 9)], "section",
            "Figs 14-18: SP original vs Iprobe-modified (section scope)"),
        "fig19": lambda: render_nas_char(
            [characterize_mg("A", n, blocking, niter=1)
             for n in (4, 8) for blocking in (True, False)],
            "Fig 19: NAS MG / ARMCI"),
        "fig20": lambda: render_overhead(
            overhead_suite(cells=(("cg", "S" if quick else "A", 4),
                                  ("lu", "S" if quick else "A", 4)),
                           niter=niter),
            "Fig 20: instrumentation overhead"),
        # Beyond the paper: the robustness appendix.  A degraded fabric
        # (drops / dups / reorders / lost stamps) must degrade the bounds
        # toward Case 3, never the report algebra.
        "robustness": lambda: render_fault_matrix(
            fault_matrix(seed=0, klass="S", nprocs=2, niter=niter),
            "Robustness appendix: fault kinds x wire protocols (NAS LU, "
            "watchdog-guarded, internal invariants checked)"),
    }


def _render_section(key: str, quick: bool, shards: int | None = None) -> str:
    """Worker: build one figure's text block (module-level: picklable)."""
    return build_sections(quick, shards)[key]()


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.paper",
        description="Regenerate the paper's evaluation in one command.",
    )
    parser.add_argument("--out", default="PAPER_RESULTS.md")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps/classes for a fast pass")
    parser.add_argument("--only", default=None,
                        help="comma-separated figure keys (e.g. fig05,fig19)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count(),
                        help="worker processes for independent figures "
                        "(default: CPU count; 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the on-disk result "
                        "cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default: "
                        "$REPRO_CACHE_DIR or .repro_cache)")
    parser.add_argument("--metrics-dir", default=None,
                        help="publish live sweep status + OpenMetrics here "
                        "(tail with `python -m repro.tools.watch`)")
    parser.add_argument("--live", action="store_true",
                        help="render the sweep dashboard in-place on stderr "
                        "while figures run")
    parser.add_argument("--shards", type=int, default=None,
                        help="run the MPI NAS characterization cells on the "
                        "sharded parallel-DES engine with this many worker "
                        "processes (reports are bit-identical; see "
                        "docs/performance.md)")
    parser.add_argument("--trace-dir", default=None,
                        help="record host-time spans for the reproduction "
                        "run and write a merged Perfetto trace_event JSON "
                        "here (inspect with `python -m repro.tools.explain`)")
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if args.shards is not None and args.shards < 1:
        print("error: --shards must be >= 1")
        return 2
    sections = build_sections(args.quick, args.shards)
    if args.only:
        wanted = {k.strip() for k in args.only.split(",")}
        unknown = wanted - set(sections)
        if unknown:
            print(f"unknown figure keys: {sorted(unknown)}; "
                  f"choose from {sorted(sections)}")
            return 2
        sections = {k: v for k, v in sections.items() if k in wanted}

    blocks = [
        "# Reproduced evaluation "
        f"({'quick' if args.quick else 'standard'} sizes)",
        "",
        "Generated by `python -m repro.tools.paper`; see EXPERIMENTS.md for "
        "the paper-vs-measured discussion.",
    ]
    t0 = time.perf_counter()
    keys = list(sections)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    print(f"running {len(keys)} figures "
          f"(jobs={args.jobs}, cache={'off' if cache is None else cache.root})",
          flush=True)
    progress = None
    if args.metrics_dir or args.live:
        from repro.metrics import SweepProgress
        on_update = None
        if args.live:
            from repro.tools.watch import LiveRenderer
            on_update = LiveRenderer().update
        progress = SweepProgress(args.metrics_dir, label="paper",
                                 on_update=on_update)
    tracer = None
    sp_root = None
    if args.trace_dir:
        from repro.tracing import Tracer

        tracer = Tracer(process="paper sweep")
        sp_root = tracer.begin("paper reproduction", "runner.root",
                               figures=len(keys), jobs=args.jobs)
    tasks = [Task(_render_section, (key, args.quick, args.shards))
             for key in keys]
    texts = run_tasks(tasks, jobs=args.jobs, cache=cache, progress=progress,
                      tracer=tracer)
    if tracer is not None:
        import pathlib

        from repro.tracing import save_trace

        assert sp_root is not None
        sp_root.end()
        tdir = pathlib.Path(args.trace_dir)
        tdir.mkdir(parents=True, exist_ok=True)
        trace_path = tdir / "paper.trace.json"
        save_trace(trace_path, tracer)
        print(f"wrote span trace to {trace_path}")
    for key, text in zip(keys, texts):
        blocks.append(f"\n## {key}\n\n```\n{text}\n```")
    elapsed = time.perf_counter() - t0
    blocks.append(f"\n_(regenerated in {elapsed:.1f} s of host time)_")
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write("\n".join(blocks) + "\n")
    cached = f", {cache.hits} cached" if cache is not None else ""
    print(f"wrote {args.out} ({len(sections)} figures{cached}, {elapsed:.1f}s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
