"""CLI: ground-truth validation of the overlap bounds.

Runs a chosen workload with transfer recording enabled, computes the true
overlapped transfer time per rank from the simulator's physical logs, and
checks it against the framework's derived bounds.

With ``--faults`` the workload runs on a degraded fabric instead: the
physical transfer log then contains retransmissions and duplicates that
have no instrumentation counterpart, so the check switches from
ground-truth bracketing to the framework's internal report invariants
(:func:`repro.faults.check_run_invariants`), with a watchdog guarding
against wedged runs.

Example::

    python -m repro.tools.validate --workload micro --size 1048576 \\
        --compute 1.5e-3 --library openmpi --leave-pinned
    python -m repro.tools.validate --workload sp --klass A --np 4 --modified
    python -m repro.tools.validate --faults drop=0.05,dup=0.02 --fault-seed 7
"""

from __future__ import annotations

import argparse
import dataclasses
import typing

from repro.experiments.validation import render_validation, validate_bounds
from repro.faults import WatchdogConfig, check_run_invariants
from repro.faults.plan import ResilienceParams, parse_fault_spec
from repro.mpisim.config import MpiConfig, mvapich2_like, openmpi_like
from repro.nas.base import CpuModel
from repro.nas.sp import sp_app
from repro.netsim.params import NetworkParams
from repro.runtime.launcher import run_app


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.validate",
        description="Check derived overlap bounds against the simulator's "
        "ground truth.",
    )
    parser.add_argument("--workload", choices=["micro", "sp"], default="micro")
    parser.add_argument("--size", type=float, default=1024 * 1024,
                        help="micro: message size in bytes")
    parser.add_argument("--compute", type=float, default=1.5e-3,
                        help="micro: inserted computation in seconds")
    parser.add_argument("--iters", type=int, default=30)
    parser.add_argument("--library", choices=["openmpi", "mvapich2", "rput"],
                        default="openmpi")
    parser.add_argument("--leave-pinned", action="store_true")
    parser.add_argument("--klass", default="A", choices=["S", "W", "A", "B"],
                        help="sp: problem class")
    parser.add_argument("--np", dest="nprocs", type=int, default=4,
                        help="sp: rank count")
    parser.add_argument("--modified", action="store_true",
                        help="sp: apply the Iprobe fix")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="run on a degraded fabric (see "
                        "repro.faults.plan.parse_fault_spec) and check the "
                        "internal report invariants instead of ground-truth "
                        "bracketing")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the deterministic fault streams")
    return parser


def _config(args: argparse.Namespace) -> MpiConfig:
    if args.library == "openmpi":
        return openmpi_like(leave_pinned=args.leave_pinned)
    if args.library == "mvapich2":
        return mvapich2_like()
    return MpiConfig(name="rput", rndv_mode="rput")


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    params = None
    watchdog = None
    if args.faults:
        plan = parse_fault_spec(args.faults, seed=args.fault_seed)
        params = NetworkParams(faults=plan)
        watchdog = WatchdogConfig(stall_sim_time=0.05, max_sim_time=60.0)

    def with_resilience(config: MpiConfig) -> MpiConfig:
        if params is None or not params.faults.has_packet_faults:
            return config
        return dataclasses.replace(config, resilience=ResilienceParams())

    if args.workload == "micro":
        size, compute, iters = args.size, args.compute, args.iters

        def app(ctx):
            for _ in range(iters):
                if ctx.rank == 0:
                    req = yield from ctx.comm.isend(1, 0, size, bufkey="b")
                    yield from ctx.compute(compute)
                    yield from ctx.comm.wait(req)
                else:
                    yield from ctx.comm.recv(0, 0)

        result = run_app(app, 2, config=with_resilience(_config(args)),
                         params=params, record_transfers=True,
                         watchdog=watchdog)
        title = (f"micro {int(size)}B / {compute * 1e3:g}ms compute / "
                 f"{_config(args).name}")
    else:
        result = run_app(
            sp_app, args.nprocs, config=with_resilience(mvapich2_like()),
            params=params, record_transfers=True, watchdog=watchdog,
            app_args=(args.klass, 2, CpuModel(10e9), args.modified),
        )
        title = (f"SP class {args.klass}, {args.nprocs} ranks, "
                 f"{'modified' if args.modified else 'original'}")

    if args.faults:
        # Degraded fabric: retransmitted/duplicated physical transfers have
        # no stamping counterpart, so bracket checks do not apply; the
        # report invariants (bound ordering, bin reconstruction, rollup
        # exactness) must still hold on whatever was collected.
        violations = check_run_invariants(result, raise_on_error=False)
        injector = result.fabric.injector
        print(f"fault run ({args.faults!r}, seed {args.fault_seed}): {title}")
        print(f"  packets dropped={injector.packets_dropped} "
              f"duplicated={injector.packets_duplicated} "
              f"reordered={injector.packets_reordered}")
        if result.watchdog is not None:
            print(result.watchdog.render_text())
            print("  (reports are partial: the watchdog stopped the run)")
        if violations:
            print(f"\n{len(violations)} invariant violation(s):")
            for v in violations:
                print(f"  {v}")
            return 1
        print("all report invariants hold under the degraded stream.")
        return 0

    checks = validate_bounds(result)
    print(render_validation(checks, title))
    bad = [c for c in checks if not c.holds]
    if bad:
        print(f"\n{len(bad)} bound violation(s)!")
        return 1
    print("\nall bounds bracket the ground truth.")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
