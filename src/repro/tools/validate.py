"""CLI: ground-truth validation of the overlap bounds.

Runs a chosen workload with transfer recording enabled, computes the true
overlapped transfer time per rank from the simulator's physical logs, and
checks it against the framework's derived bounds.

Example::

    python -m repro.tools.validate --workload micro --size 1048576 \\
        --compute 1.5e-3 --library openmpi --leave-pinned
    python -m repro.tools.validate --workload sp --klass A --np 4 --modified
"""

from __future__ import annotations

import argparse
import typing

from repro.experiments.validation import render_validation, validate_bounds
from repro.mpisim.config import MpiConfig, mvapich2_like, openmpi_like
from repro.nas.base import CpuModel
from repro.nas.sp import sp_app
from repro.runtime.launcher import run_app


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.validate",
        description="Check derived overlap bounds against the simulator's "
        "ground truth.",
    )
    parser.add_argument("--workload", choices=["micro", "sp"], default="micro")
    parser.add_argument("--size", type=float, default=1024 * 1024,
                        help="micro: message size in bytes")
    parser.add_argument("--compute", type=float, default=1.5e-3,
                        help="micro: inserted computation in seconds")
    parser.add_argument("--iters", type=int, default=30)
    parser.add_argument("--library", choices=["openmpi", "mvapich2", "rput"],
                        default="openmpi")
    parser.add_argument("--leave-pinned", action="store_true")
    parser.add_argument("--klass", default="A", choices=["S", "W", "A", "B"],
                        help="sp: problem class")
    parser.add_argument("--np", dest="nprocs", type=int, default=4,
                        help="sp: rank count")
    parser.add_argument("--modified", action="store_true",
                        help="sp: apply the Iprobe fix")
    return parser


def _config(args: argparse.Namespace) -> MpiConfig:
    if args.library == "openmpi":
        return openmpi_like(leave_pinned=args.leave_pinned)
    if args.library == "mvapich2":
        return mvapich2_like()
    return MpiConfig(name="rput", rndv_mode="rput")


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if args.workload == "micro":
        size, compute, iters = args.size, args.compute, args.iters

        def app(ctx):
            for _ in range(iters):
                if ctx.rank == 0:
                    req = yield from ctx.comm.isend(1, 0, size, bufkey="b")
                    yield from ctx.compute(compute)
                    yield from ctx.comm.wait(req)
                else:
                    yield from ctx.comm.recv(0, 0)

        result = run_app(app, 2, config=_config(args), record_transfers=True)
        title = (f"micro {int(size)}B / {compute * 1e3:g}ms compute / "
                 f"{_config(args).name}")
    else:
        result = run_app(
            sp_app, args.nprocs, config=mvapich2_like(), record_transfers=True,
            app_args=(args.klass, 2, CpuModel(10e9), args.modified),
        )
        title = (f"SP class {args.klass}, {args.nprocs} ranks, "
                 f"{'modified' if args.modified else 'original'}")

    checks = validate_bounds(result)
    print(render_validation(checks, title))
    bad = [c for c in checks if not c.holds]
    if bad:
        print(f"\n{len(bad)} bound violation(s)!")
        return 1
    print("\nall bounds bracket the ground truth.")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
