"""Command-line tools.

* ``python -m repro.tools.perfmain`` -- measure and write the a-priori
  transfer-time table (the paper's ``perf_main`` step);
* ``python -m repro.tools.micro`` -- the Sec.-3 overlap microbenchmark
  sweep, with optional ASCII plots;
* ``python -m repro.tools.nas`` -- run one NAS benchmark cell and write
  per-process overlap reports;
* ``python -m repro.tools.report`` -- render saved overlap reports
  (summary, size breakdown, sections, before/after diff);
* ``python -m repro.tools.validate`` -- check derived bounds against the
  simulator's ground-truth overlap;
* ``python -m repro.tools.paper`` -- regenerate the paper's whole
  evaluation into one consolidated document.
"""
