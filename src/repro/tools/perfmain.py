"""CLI: build the a-priori transfer-time table (simulated ``perf_main``).

Example::

    python -m repro.tools.perfmain --out xfer_table.tsv
    python -m repro.tools.perfmain --latency-us 4 --bandwidth-mbs 900 \\
        --min-size 64 --max-size 4194304 --out fast_fabric.tsv
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.experiments.micro import build_xfer_table
from repro.netsim.params import NetworkParams


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.perfmain",
        description="Measure one-way transfer times on the simulated fabric "
        "and write the table the instrumented library loads at init.",
    )
    parser.add_argument("--out", required=True, help="output table path (TSV)")
    parser.add_argument("--latency-us", type=float, default=None,
                        help="fabric latency in microseconds")
    parser.add_argument("--bandwidth-mbs", type=float, default=None,
                        help="fabric bandwidth in MB/s")
    parser.add_argument("--min-size", type=float, default=1.0,
                        help="smallest message size in bytes")
    parser.add_argument("--max-size", type=float, default=8 * 1024 * 1024,
                        help="largest message size in bytes")
    parser.add_argument("--reps", type=int, default=4,
                        help="ping-pong repetitions per size")
    return parser


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if args.min_size <= 0 or args.max_size < args.min_size:
        print("error: need 0 < --min-size <= --max-size", file=sys.stderr)
        return 2
    overrides = {}
    if args.latency_us is not None:
        overrides["latency"] = args.latency_us * 1e-6
    if args.bandwidth_mbs is not None:
        overrides["bandwidth"] = args.bandwidth_mbs * 1e6
    params = NetworkParams(**overrides)

    sizes = []
    size = args.min_size
    while size <= args.max_size:
        sizes.append(size)
        size *= 2
    table = build_xfer_table(params, sizes=sizes, path=args.out, reps=args.reps)
    print(f"wrote {table.sizes.size} points to {args.out}")
    for s in (1024.0, 65536.0, 1048576.0):
        if args.min_size <= s <= args.max_size:
            print(f"  {int(s):>8} B -> {table.time_for(s) * 1e6:9.2f} us "
                  f"({table.bandwidth_for(s) / 1e6:7.1f} MB/s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
