"""CLI: build the a-priori transfer-time table (simulated ``perf_main``).

Example::

    python -m repro.tools.perfmain --out xfer_table.tsv
    python -m repro.tools.perfmain --latency-us 4 --bandwidth-mbs 900 \\
        --min-size 64 --max-size 4194304 --out fast_fabric.tsv

``--compare`` turns the tool into the network fast path's referee: it
runs one NAS workload under both ``network_path`` settings and prints a
per-measure equality report (reports, telemetry windows, deterministic
metrics), so users can verify the macro-event fast path on their own
workload before trusting its numbers::

    python -m repro.tools.perfmain --compare fast --benchmark lu \\
        --klass S --np 4
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.experiments.micro import build_xfer_table
from repro.netsim.params import NetworkParams


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.perfmain",
        description="Measure one-way transfer times on the simulated fabric "
        "and write the table the instrumented library loads at init.",
    )
    parser.add_argument("--out", default=None,
                        help="output table path (TSV); required unless "
                        "--compare is given")
    parser.add_argument("--compare", choices=("fast", "packet"), default=None,
                        help="instead of writing a table, run the given NAS "
                        "workload under BOTH network paths and print a "
                        "per-measure equality report (the argument picks "
                        "which side's wall-clock is quoted)")
    parser.add_argument("--benchmark", choices=("lu", "cg", "sp"),
                        default="lu", help="--compare workload kernel")
    parser.add_argument("--klass", default="S", help="--compare NAS class")
    parser.add_argument("--np", dest="nprocs", type=int, default=4,
                        help="--compare rank count")
    parser.add_argument("--niter", type=int, default=1,
                        help="--compare iteration count")
    parser.add_argument("--latency-us", type=float, default=None,
                        help="fabric latency in microseconds")
    parser.add_argument("--bandwidth-mbs", type=float, default=None,
                        help="fabric bandwidth in MB/s")
    parser.add_argument("--min-size", type=float, default=1.0,
                        help="smallest message size in bytes")
    parser.add_argument("--max-size", type=float, default=8 * 1024 * 1024,
                        help="largest message size in bytes")
    parser.add_argument("--reps", type=int, default=4,
                        help="ping-pong repetitions per size")
    parser.add_argument("--shards", type=int, default=None,
                        help="with --compare: referee the sharded "
                        "parallel-DES engine instead -- run the workload "
                        "once single-process and once with this many "
                        "shards (channel delivery on both sides) and "
                        "print the per-measure equality report")
    parser.add_argument("--shard-sync", choices=("window", "null"),
                        default="window",
                        help="shard synchronization protocol for "
                        "--compare --shards")
    return parser


def _compare(args: argparse.Namespace) -> int:
    """Run one workload under both network paths; print the equality report."""
    import time

    from repro.netsim.differential import compare_runs, run_both

    if args.benchmark == "lu":
        from repro.nas.lu import lu_app as app
        app_args: tuple = (args.klass, args.niter, None, None)
    elif args.benchmark == "cg":
        from repro.nas.cg import cg_app as app
        app_args = (args.klass, args.niter, None)
    else:
        from repro.nas.sp import sp_app as app
        app_args = (args.klass, args.niter, None, False)

    host: dict[str, float] = {}
    t0 = time.perf_counter()
    if args.shards is not None:
        from repro.netsim.differential import compare_sharded, run_sharded_pair

        fast, packet = run_sharded_pair(
            app, args.nprocs, args.shards, app_args=app_args,
            label=f"{args.benchmark}.{args.klass}.{args.nprocs}",
            sync=args.shard_sync,
        )
        host["both"] = time.perf_counter() - t0
        deltas = compare_sharded(fast, packet)
        sides = ("single", "sharded")
        axis = (f"single vs {args.shards} shards, sync={args.shard_sync}")
        fail_hint = ("the sharded engine is NOT safe on this workload; run "
                     "without --shards and report a bug")
        ok_line = ("OK: the sharded engine is bit-identical on this "
                   "workload")
    else:
        fast, packet, mfast, mpacket = run_both(
            app, args.nprocs, app_args=app_args,
            label=f"{args.benchmark}.{args.klass}.{args.nprocs}",
        )
        host["both"] = time.perf_counter() - t0
        deltas = compare_runs(fast, packet, mfast, mpacket)
        sides = ("fast", "packet")
        axis = "fast vs packet"
        fail_hint = ("the fast path is NOT safe on this workload; run with "
                     "network_path='packet' and report a bug")
        ok_line = ("OK: the fast path is observationally identical on this "
                   "workload")
    unequal = [d for d in deltas if not d.equal]

    width = max(len(d.measure) for d in deltas)
    print(f"differential: {args.benchmark}.{args.klass} np={args.nprocs} "
          f"niter={args.niter} ({axis}, "
          f"{host['both']:.2f} s host)")
    for d in deltas:
        mark = "==" if d.equal else "!="
        print(f"  {d.measure:<{width}}  {mark}")
        if not d.equal:
            print(f"    {sides[0]}: {d.fast!r}")
            print(f"    {sides[1]}: {d.packet!r}")
    n_eq = len(deltas) - len(unequal)
    print(f"{n_eq}/{len(deltas)} measures bit-identical", end="")
    ref = packet if (args.shards is not None or args.compare == "packet") \
        else fast
    which = sides[1] if (args.shards is not None
                         or args.compare == "packet") else sides[0]
    print(f"; {which} side simulated {ref.elapsed * 1e3:.2f} ms")
    if unequal:
        print(f"FAIL: {len(unequal)} measure(s) differ -- {fail_hint}")
        return 1
    print(ok_line)
    return 0


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if args.compare is not None:
        return _compare(args)
    if args.out is None:
        print("error: --out is required (unless --compare is given)",
              file=sys.stderr)
        return 2
    if args.min_size <= 0 or args.max_size < args.min_size:
        print("error: need 0 < --min-size <= --max-size", file=sys.stderr)
        return 2
    overrides = {}
    if args.latency_us is not None:
        overrides["latency"] = args.latency_us * 1e-6
    if args.bandwidth_mbs is not None:
        overrides["bandwidth"] = args.bandwidth_mbs * 1e6
    params = NetworkParams(**overrides)

    sizes = []
    size = args.min_size
    while size <= args.max_size:
        sizes.append(size)
        size *= 2
    table = build_xfer_table(params, sizes=sizes, path=args.out, reps=args.reps)
    print(f"wrote {table.sizes.size} points to {args.out}")
    for s in (1024.0, 65536.0, 1048576.0):
        if args.min_size <= s <= args.max_size:
            print(f"  {int(s):>8} B -> {table.time_for(s) * 1e6:9.2f} us "
                  f"({table.bandwidth_for(s) / 1e6:7.1f} MB/s)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
