"""CLI: time-resolved telemetry for one simulated run, or an offline rollup.

Run mode simulates one NAS cell with windowed collection + trace capture
and writes the full telemetry layout (per-rank files, a Perfetto-loadable
``trace.json``, and ``rollup.json``), then renders rank 0's time series
as an ASCII plot and the cluster rollup summary::

    python -m repro.tools.timeline --benchmark lu --klass S --np 4 --out out/
    python -m repro.tools.timeline --benchmark sp --klass A --np 9 \\
        --width 2e-4 --ground-truth

Rollup mode merges previously written per-rank telemetry files (any rank
count, constant memory) without running anything::

    python -m repro.tools.timeline --rollup out/telemetry.rank*.json

See ``docs/telemetry.md`` for the file layouts and window semantics.
"""

from __future__ import annotations

import argparse
import typing

from repro.analysis.textplot import DEFAULT_TIMELINE_METRICS, timeline_plot
from repro.experiments.nas_char import MPI_BENCHMARKS
from repro.telemetry import (
    TelemetryConfig,
    check_windowed_bounds,
    render_windowed_validation,
    rollup_files,
    write_run_telemetry,
)
from repro.telemetry.windows import WINDOW_METRICS


def _app_args(benchmark: str, klass: str, niter: int) -> tuple:
    if benchmark == "lu":
        return (klass, niter, None, None)
    if benchmark == "ep":
        return (klass, None, 1e-3)
    if benchmark == "sp":
        return (klass, niter, None, False)
    return (klass, niter, None)


def _parse_metrics(text: str) -> list[str]:
    names = [m.strip() for m in text.split(",") if m.strip()]
    unknown = [m for m in names if m not in WINDOW_METRICS]
    if unknown or not names:
        raise argparse.ArgumentTypeError(
            f"metrics must be from {list(WINDOW_METRICS)}, got {text!r}"
        )
    return names


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.timeline",
        description="Time-resolved overlap telemetry: run one simulation "
        "with windowed collection and Perfetto export, or roll up "
        "previously written per-rank telemetry files.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--benchmark", choices=sorted(MPI_BENCHMARKS),
                      help="NAS cell to simulate")
    mode.add_argument("--rollup", nargs="+", metavar="FILE",
                      help="merge existing telemetry.rank*.json files "
                      "instead of running a simulation")
    parser.add_argument("--klass", default="S", choices=["S", "W", "A", "B"])
    parser.add_argument("--np", dest="nprocs", type=int, default=4)
    parser.add_argument("--niter", type=int, default=2)
    parser.add_argument("--width", type=float, default=None,
                        help="window width in simulated seconds "
                        "(default: the telemetry default)")
    parser.add_argument("--max-windows", type=int, default=None,
                        help="bounded ring capacity per rank")
    parser.add_argument("--ground-truth", action="store_true",
                        help="record physical transfers: adds wire tracks "
                        "to the trace and prints the windowed bound check")
    parser.add_argument("--rank", type=int, default=0,
                        help="which rank's series to plot")
    parser.add_argument("--metrics", type=_parse_metrics,
                        default=list(DEFAULT_TIMELINE_METRICS),
                        help="comma-separated window metrics to plot")
    parser.add_argument("--out", default="telemetry_out",
                        help="output directory (run mode)")
    parser.add_argument("--no-plot", action="store_true",
                        help="skip the ASCII time-series plot")
    return parser


def _run_mode(args: argparse.Namespace) -> int:
    from repro.runtime.launcher import run_app

    app, config_factory = MPI_BENCHMARKS[args.benchmark]
    overrides = {}
    if args.width is not None:
        overrides["window_width"] = args.width
    if args.max_windows is not None:
        overrides["max_windows"] = args.max_windows
    telemetry_cfg = TelemetryConfig(**overrides)
    label = f"{args.benchmark}.{args.klass}.{args.nprocs}"
    result = run_app(
        app, args.nprocs, config=config_factory(), label=label,
        app_args=_app_args(args.benchmark, args.klass, args.niter),
        record_transfers=args.ground_truth, telemetry=telemetry_cfg,
    )
    assert result.telemetry is not None
    written = write_run_telemetry(result, args.out)

    series = result.telemetry.series(args.rank)
    print(f"{label}: {result.elapsed * 1e3:.3f} ms simulated, "
          f"{len(series)} windows of {series.width * 1e3:.3g} ms "
          f"for rank {args.rank}")
    if not args.no_plot:
        print()
        print(timeline_plot(series.deltas(), args.metrics,
                            title=f"{label} rank {args.rank} "
                            "(per-window seconds)"))
    if args.ground_truth:
        checks = check_windowed_bounds(result, args.rank, series)
        print()
        print(render_windowed_validation(
            checks, title=f"windowed bounds vs ground truth (rank {args.rank})"
        ))
        bad = [c for c in checks if not c.holds]
        if bad:
            print(f"WARNING: {len(bad)} window(s) violated the bounds")
    print()
    print(rollup_files(written["ranks"]).render_text())
    total = sum(len(paths) for paths in written.values())
    print(f"\nwrote {total} files to {args.out}/ "
          "(per-rank telemetry, trace.json for ui.perfetto.dev, rollup.json)")
    return 0


def _rollup_mode(paths: typing.Sequence[str]) -> int:
    rollup = rollup_files(paths)
    print(rollup.render_text())
    return 0


def main(argv: typing.Sequence[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    if args.rollup:
        return _rollup_mode(args.rollup)
    return _run_mode(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
