"""CLI: run the overlap-analysis job service.

::

    python -m repro.tools.serve --port 8080 --workers 4 \\
        --cache-dir /var/cache/repro --metrics-dir /var/run/repro

    # CI / self-test: start a real server on a loopback port, drive a
    # tiny LU job through submit -> poll -> result -> metrics -> warm
    # resubmit, and exit 0 only if every step behaved.
    python -m repro.tools.serve --smoke

The server answers on ``/v1/jobs`` (see ``docs/service.md`` for the API
reference); ``repro.tools.watch --url http://host:port`` tails its
progress endpoints like any other sweep.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import typing

from repro.service.core import OverlapService
from repro.service.queue import QuotaConfig
from repro.service.server import ServiceHTTPServer


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.serve",
        description="Serve overlap-analysis jobs over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent job executions (each job's cells "
                        "run in crash-isolated processes)")
    parser.add_argument("--cache-dir", default=None,
                        help="sharded result-cache root (default: "
                        "$REPRO_CACHE_DIR or .repro_cache)")
    parser.add_argument("--cache-shards", type=int, default=4,
                        help="cache directory shards (hash-prefix keyed)")
    parser.add_argument("--cache-max-entries", type=int, default=None,
                        help="LRU bound per cache shard (default unbounded)")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        help="LRU byte bound per cache shard")
    parser.add_argument("--metrics-dir", default=None,
                        help="publish service + per-job sweep.json/"
                        "metrics.om artifacts here")
    parser.add_argument("--trace-dir", default=None,
                        help="record host-time spans per job (accept -> "
                        "queue -> execute -> shards) and write one merged "
                        "Perfetto trace_event JSON per execution here; also "
                        "enables GET /v1/jobs/{id}/trace")
    parser.add_argument("--trace", action="store_true",
                        help="enable span tracing and the trace endpoint "
                        "without writing trace files")
    parser.add_argument("--max-queued-per-tenant", type=int, default=64)
    parser.add_argument("--max-running-per-tenant", type=int, default=2)
    parser.add_argument("--max-queued-total", type=int, default=1024)
    parser.add_argument("--smoke", action="store_true",
                        help="start on a loopback port, run the end-to-end "
                        "self-test, and exit")
    return parser


def build_service(args: argparse.Namespace) -> OverlapService:
    return OverlapService(
        cache_root=args.cache_dir,
        cache_shards=args.cache_shards,
        workers=args.workers,
        quotas=QuotaConfig(
            max_queued_per_tenant=args.max_queued_per_tenant,
            max_running_per_tenant=args.max_running_per_tenant,
            max_queued_total=args.max_queued_total,
        ),
        metrics_dir=args.metrics_dir,
        cache_max_entries=args.cache_max_entries,
        cache_max_bytes=args.cache_max_bytes,
        trace_dir=args.trace_dir,
        trace=args.trace,
    )


async def _serve_forever(service: OverlapService, host: str,
                         port: int) -> None:
    server = ServiceHTTPServer(service, host, port)
    bound = await server.start()
    service.start()
    print(f"repro.service listening on http://{host}:{bound} "
          f"({service.workers} workers, cache at {service.cache.root})")
    try:
        await asyncio.Event().wait()  # serve until interrupted
    finally:
        await server.close()
        service.shutdown()


def run_smoke(args: argparse.Namespace) -> int:
    """End-to-end self-test against a real loopback server."""
    import tempfile

    from repro.service.client import ServiceClient
    from repro.service.server import ServerThread
    from repro.tools import watch

    failures: "list[str]" = []

    def check(ok: bool, what: str) -> None:
        print(("ok   " if ok else "FAIL ") + what)
        if not ok:
            failures.append(what)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        service = OverlapService(cache_root=f"{tmp}/cache", workers=2,
                                 metrics_dir=f"{tmp}/metrics",
                                 trace_dir=f"{tmp}/traces")
        spec = {"tenant": "smoke", "kind": "nas", "benchmark": "lu",
                "klass": "S", "np": 2, "niter": 1}
        with ServerThread(service, host=args.host) as server:
            client = ServiceClient(server.url)
            health = client.healthz()
            check(health.status == 200 and health.body.get("ok") is True,
                  "GET /healthz")

            sub = client.submit(spec)
            check(sub.status == 202, f"POST /v1/jobs -> 202 (got {sub.status})")
            job_id = sub.body["job_id"]
            final = client.wait(job_id, timeout=120.0)
            check(final.body.get("state") == "done",
                  f"job completes (state {final.body.get('state')})")

            result = client.result(job_id)
            rows = result.body.get("rows", [])
            check(result.status == 200 and len(rows) == 1
                  and rows[0].get("reports"),
                  "GET result returns report rows")

            streamed = client.stream_result(job_id)
            check(len(streamed) == 2 and streamed[1] == rows[0],
                  "streamed NDJSON rows match paged rows")

            trace = client.request("GET", f"/v1/jobs/{job_id}/trace")
            check(trace.status == 200
                  and bool(trace.body.get("traceEvents")),
                  "GET trace returns a Perfetto timeline")
            if trace.status == 200:
                from repro.tracing import validate_trace
                check(validate_trace(trace.body) == [],
                      "trace is structurally valid")

            metrics = client.metrics_text()
            check("repro_service_submissions" in metrics
                  and "repro_cache_lookups" in metrics,
                  "GET /v1/metrics exposes service counters")

            warm = client.submit(spec)
            check(warm.status == 200 and warm.body.get("cached") is True,
                  "warm resubmit is a cache hit")
            warm_rows = client.result(warm.body["job_id"]).body.get("rows")
            check(json.dumps(warm_rows, sort_keys=True)
                  == json.dumps(rows, sort_keys=True),
                  "cached rows identical to executed rows")

            rc = watch.main(["--once", "--url", server.url])
            check(rc == 0, "repro.tools.watch --once --url")
            client.close()

    if failures:
        print(f"smoke: {len(failures)} check(s) failed")
        return 1
    print("smoke: all checks passed")
    return 0


def main(argv: "typing.Sequence[str] | None" = None) -> int:
    args = make_parser().parse_args(argv)
    if args.workers < 1:
        make_parser().error("--workers must be >= 1")
    if args.smoke:
        return run_smoke(args)
    service = build_service(args)
    try:
        asyncio.run(_serve_forever(service, args.host, args.port))
    except KeyboardInterrupt:
        print("repro.service: interrupted, shutting down")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
