"""Interpreting the derived measures (paper Sec. 2.3).

The bounds are only useful if a developer can act on them.  This module
encodes the paper's reading rules:

* ``data transfer time - max overlapped transfer time`` is communication
  that *provably* was not hidden -- "an indicator of overall application
  performance loss";
* the min bound is "a clear savings in execution time due to achieved
  overlap";
* the size breakdown "will reveal the particular message transfers that
  are affecting application performance the most";
* a large case-1 share means transfers complete inside single calls --
  the structural signature of a failed overlap attempt (the SP story).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.core.measures import CASE_SAME_CALL, OverlapMeasures
from repro.core.report import OverlapReport


@dataclasses.dataclass
class Interpretation:
    """Actionable summary of one report (or one section of it)."""

    scope: str
    #: Provably non-hidden communication (s): the performance-loss indicator.
    min_nonoverlapped_time: float
    #: Communication guaranteed hidden (s): realized savings.
    guaranteed_savings: float
    #: Extra savings available if the max bound were realized (s).
    potential_further_savings: float
    #: Fraction of the run's wall time that is provably non-hidden comm.
    loss_fraction_of_wall: float
    #: Share of transfers that completed inside a single call (case 1).
    same_call_share: float
    #: The size-range label responsible for most non-overlapped time.
    dominant_loss_range: str | None
    #: Heuristic advice strings, most important first.
    advice: list[str]


def _dominant_loss_range(measures: OverlapMeasures) -> str | None:
    worst, worst_loss = None, 0.0
    for i, b in enumerate(measures.bins.bins):
        loss = b.xfer_time - b.max_overlap
        if loss > worst_loss:
            worst_loss = loss
            worst = measures.bins.label_for(i)
    return worst


def interpret(
    report: OverlapReport, section: str | None = None
) -> Interpretation:
    """Build the actionable summary for the whole run or one section."""
    if section is None:
        measures = report.total
        scope = "<total>"
    else:
        try:
            measures = report.sections[section]
        except KeyError:
            raise ValueError(
                f"no section {section!r}; have {sorted(report.sections)}"
            ) from None
        scope = section
    loss = measures.min_nonoverlapped_time
    realized = measures.min_overlap_time
    potential = measures.max_overlap_time - measures.min_overlap_time
    wall = report.wall_time
    same_call = (
        measures.case_counts[CASE_SAME_CALL] / measures.transfer_count
        if measures.transfer_count
        else 0.0
    )

    advice: list[str] = []
    if measures.transfer_count == 0:
        advice.append("no data transfers observed in this scope")
    else:
        if same_call >= 0.5:
            advice.append(
                "most transfers begin and end inside a single library call "
                "(case 1): restructure with non-blocking calls, or add "
                "progress calls (e.g. MPI_Iprobe) so transfers can start "
                "before the wait"
            )
        if wall > 0 and loss / wall > 0.1:
            advice.append(
                f"non-overlapped communication is "
                f"{100 * loss / wall:.0f}% of wall time: a first-order "
                "optimization target"
            )
        if potential > realized and potential > 0:
            advice.append(
                "the bounds are wide (much case-3 uncertainty): add "
                "instrumentation coverage or library support to narrow them"
            )
        dominant = _dominant_loss_range(measures)
        if dominant is not None:
            advice.append(
                f"losses concentrate in the {dominant} size range: tune the "
                "protocol (eager threshold, pipelining) or restructure those "
                "transfers first"
            )
        if not advice:
            advice.append("overlap is healthy in this scope")

    return Interpretation(
        scope=scope,
        min_nonoverlapped_time=loss,
        guaranteed_savings=realized,
        potential_further_savings=potential,
        loss_fraction_of_wall=loss / wall if wall > 0 else 0.0,
        same_call_share=same_call,
        dominant_loss_range=_dominant_loss_range(measures),
        advice=advice,
    )


def render_interpretation(interp: Interpretation) -> str:
    """Human-readable version of :func:`interpret`'s output."""
    lines = [
        f"interpretation ({interp.scope}):",
        f"  provably non-hidden communication  {interp.min_nonoverlapped_time * 1e3:.3f} ms "
        f"({100 * interp.loss_fraction_of_wall:.1f}% of wall time)",
        f"  guaranteed overlap savings         {interp.guaranteed_savings * 1e3:.3f} ms",
        f"  further potential (bound width)    {interp.potential_further_savings * 1e3:.3f} ms",
        f"  same-call (case 1) transfer share  {100 * interp.same_call_share:.0f}%",
    ]
    if interp.dominant_loss_range:
        lines.append(f"  dominant loss size range           {interp.dominant_loss_range}")
    for item in interp.advice:
        lines.append(f"  -> {item}")
    return "\n".join(lines)
