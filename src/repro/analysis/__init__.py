"""Rendering experiment records as the paper's tables and figure series."""

from repro.analysis.interpret import Interpretation, interpret, render_interpretation
from repro.analysis.tables import (
    micro_series_rows,
    render_micro_series,
    render_nas_char,
    render_overhead,
    render_size_breakdown,
    render_sp_tuning,
)
from repro.analysis.textplot import ascii_plot, timeline_plot
from repro.analysis.traffic import (
    message_counts,
    modeled_time_matrix,
    render_traffic_matrix,
    traffic_matrix,
)

__all__ = [
    "Interpretation",
    "ascii_plot",
    "interpret",
    "message_counts",
    "modeled_time_matrix",
    "render_interpretation",
    "render_traffic_matrix",
    "traffic_matrix",
    "micro_series_rows",
    "render_micro_series",
    "render_nas_char",
    "render_overhead",
    "render_size_breakdown",
    "render_sp_tuning",
    "timeline_plot",
]
