"""Minimal ASCII line plots for reading sweep shapes in a terminal."""

from __future__ import annotations

import typing

#: Metrics :func:`timeline_plot` renders when none are named.
DEFAULT_TIMELINE_METRICS = (
    "min_overlap_time",
    "max_overlap_time",
    "computation_time",
    "communication_call_time",
)


def ascii_plot(
    series: dict[str, typing.Sequence[float]],
    x: typing.Sequence[float],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more named series against shared x values.

    Each series gets a marker from ``*+o#@%`` in declaration order.
    Returns a multi-line string; y is auto-scaled to the data range.
    """
    if not series:
        raise ValueError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length {len(ys)} != x length {len(x)}")
    if len(x) < 2:
        raise ValueError("need at least two x positions")

    markers = "*+o#@%"
    all_y = [v for ys in series.values() for v in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x), max(x)
    if x_max == x_min:
        raise ValueError("x values are all equal")

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        for xv, yv in zip(x, ys):
            cx = round((xv - x_min) / (x_max - x_min) * (width - 1))
            cy = round((yv - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - cy][cx] = marker

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    top = f"{y_max:.4g}"
    bottom = f"{y_min:.4g}"
    label_w = max(len(top), len(bottom), len(y_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            label = top
        elif i == height - 1:
            label = bottom
        elif i == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{label_w}} |{''.join(row)}")
    lines.append(f"{'':>{label_w}} +{'-' * width}")
    lines.append(f"{'':>{label_w}}  {x_min:<.4g}{'':^{max(0, width - 16)}}{x_max:>.4g}")
    return "\n".join(lines)


def timeline_plot(
    rows: typing.Sequence[dict],
    metrics: typing.Sequence[str] = DEFAULT_TIMELINE_METRICS,
    width: int = 64,
    height: int = 12,
    title: str = "",
    time_scale: float = 1e3,
) -> str:
    """Plot per-window telemetry deltas against simulated time.

    ``rows`` is what :meth:`repro.telemetry.windows.WindowSeries.deltas`
    returns: dicts with ``start`` / ``end`` (seconds) and metric values.
    X is the window midpoint scaled by ``time_scale`` (default: ms).
    Degenerate series (fewer than two windows) render as a text note
    instead of a plot.
    """
    if not metrics:
        raise ValueError("need at least one metric")
    missing = [m for m in metrics if rows and m not in rows[0]]
    if missing:
        raise ValueError(f"rows lack metrics {missing}")
    if len(rows) < 2:
        parts = [title] if title else []
        parts.append(f"(only {len(rows)} window(s); nothing to plot)")
        for row in rows:
            parts.extend(f"  {m} = {row[m]:.6g}" for m in metrics)
        return "\n".join(parts)
    x = [(row["start"] + row["end"]) / 2.0 * time_scale for row in rows]
    series = {m: [row[m] for row in rows] for m in metrics}
    unit = {1.0: "s", 1e3: "ms", 1e6: "us"}.get(time_scale, f"x{time_scale:g}s")
    return ascii_plot(series, x, width=width, height=height, title=title,
                      y_label=f"per-{unit}-window")
