"""Minimal ASCII line plots for reading sweep shapes in a terminal."""

from __future__ import annotations

import typing


def ascii_plot(
    series: dict[str, typing.Sequence[float]],
    x: typing.Sequence[float],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more named series against shared x values.

    Each series gets a marker from ``*+o#@%`` in declaration order.
    Returns a multi-line string; y is auto-scaled to the data range.
    """
    if not series:
        raise ValueError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length {len(ys)} != x length {len(x)}")
    if len(x) < 2:
        raise ValueError("need at least two x positions")

    markers = "*+o#@%"
    all_y = [v for ys in series.values() for v in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x), max(x)
    if x_max == x_min:
        raise ValueError("x values are all equal")

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        for xv, yv in zip(x, ys):
            cx = round((xv - x_min) / (x_max - x_min) * (width - 1))
            cy = round((yv - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - cy][cx] = marker

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    top = f"{y_max:.4g}"
    bottom = f"{y_min:.4g}"
    label_w = max(len(top), len(bottom), len(y_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            label = top
        elif i == height - 1:
            label = bottom
        elif i == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{label_w}} |{''.join(row)}")
    lines.append(f"{'':>{label_w}} +{'-' * width}")
    lines.append(f"{'':>{label_w}}  {x_min:<.4g}{'':^{max(0, width - 16)}}{x_max:>.4g}")
    return "\n".join(lines)
