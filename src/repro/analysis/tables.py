"""Text tables reproducing each figure's data series.

The paper presents line plots (Figs. 3-9) and grouped bars (Figs. 10-20);
without a plotting stack we print the exact series those figures encode,
one row per x-position, so shapes can be read and diffed.
"""

from __future__ import annotations

import typing

from repro.core.measures import OverlapMeasures
from repro.core.report import OverlapReport

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.micro import MicroPoint
    from repro.experiments.nas_char import CharPoint
    from repro.experiments.overhead import OverheadPoint
    from repro.experiments.sp_tuning import SpTuningResult


# ---------------------------------------------------------------------------
# Figures 3-9: microbenchmark sweeps
# ---------------------------------------------------------------------------
def micro_series_rows(
    points: "typing.Sequence[MicroPoint]", side: str
) -> list[dict[str, float]]:
    """Numeric series of one microbenchmark figure for one side."""
    return [
        {
            "compute_us": p.compute_time * 1e6,
            "min_overlap_pct": p.min_pct(side),
            "max_overlap_pct": p.max_pct(side),
            "wait_us": p.wait_time(side) * 1e6,
        }
        for p in points
    ]


def render_micro_series(
    points: "typing.Sequence[MicroPoint]",
    side: str,
    title: str = "",
) -> str:
    """One figure's series as an aligned text table."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'compute(us)':>12} {'min ovlp %':>10} {'max ovlp %':>10} {'wait(us)':>12}"
    )
    for row in micro_series_rows(points, side):
        lines.append(
            f"{row['compute_us']:>12.1f} {row['min_overlap_pct']:>10.1f} "
            f"{row['max_overlap_pct']:>10.1f} {row['wait_us']:>12.1f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figures 10-13, 19: NAS characterization
# ---------------------------------------------------------------------------
def render_nas_char(points: "typing.Sequence[CharPoint]", title: str = "") -> str:
    """Grouped-bar data: one row per (class, nprocs[, variant])."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'class':>5} {'procs':>5} {'variant':>12} {'min ovlp %':>10} "
        f"{'max ovlp %':>10} {'xfer(ms)':>10} {'mpi(ms)':>10}"
    )
    for p in points:
        m = p.report.total
        lines.append(
            f"{p.klass:>5} {p.nprocs:>5} {p.variant or '-':>12} "
            f"{m.min_overlap_pct:>10.1f} {m.max_overlap_pct:>10.1f} "
            f"{m.data_transfer_time * 1e3:>10.3f} "
            f"{m.communication_call_time * 1e3:>10.3f}"
        )
    return "\n".join(lines)


def render_size_breakdown(report: OverlapReport, title: str = "") -> str:
    """The per-message-size-range detail the framework provides (Sec. 2.3)."""
    lines = []
    if title:
        lines.append(title)
    bins = report.total.bins
    lines.append(
        f"{'size range':>18} {'count':>8} {'bytes':>14} {'xfer(ms)':>10} "
        f"{'min %':>7} {'max %':>7}"
    )
    for i, b in enumerate(bins.bins):
        if not b.count:
            continue
        pmin = 100.0 * b.min_overlap / b.xfer_time if b.xfer_time else 0.0
        pmax = 100.0 * b.max_overlap / b.xfer_time if b.xfer_time else 0.0
        lines.append(
            f"{bins.label_for(i):>18} {b.count:>8} {b.bytes:>14.0f} "
            f"{b.xfer_time * 1e3:>10.3f} {pmin:>7.1f} {pmax:>7.1f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figures 14-18: SP tuning
# ---------------------------------------------------------------------------
def render_sp_tuning(
    results: "typing.Sequence[SpTuningResult]",
    scope: str = "section",
    title: str = "",
) -> str:
    """Original-vs-modified overlap (scope='section' or 'full') and MPI time."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'class':>5} {'procs':>5} "
        f"{'orig min%':>9} {'orig max%':>9} {'mod min%':>9} {'mod max%':>9} "
        f"{'mpi orig(ms)':>13} {'mpi mod(ms)':>12} {'gain %':>7}"
    )
    for r in results:
        get: typing.Callable[[str], OverlapMeasures] = (
            r.section if scope == "section" else r.full
        )
        o, m = get("original"), get("modified")
        lines.append(
            f"{r.klass:>5} {r.nprocs:>5} "
            f"{o.min_overlap_pct:>9.1f} {o.max_overlap_pct:>9.1f} "
            f"{m.min_overlap_pct:>9.1f} {m.max_overlap_pct:>9.1f} "
            f"{r.mpi_time_original * 1e3:>13.3f} "
            f"{r.mpi_time_modified * 1e3:>12.3f} "
            f"{r.mpi_time_improvement_pct:>7.1f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure 20: instrumentation overhead
# ---------------------------------------------------------------------------
def render_overhead(points: "typing.Sequence[OverheadPoint]", title: str = "") -> str:
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'bench':>6} {'class':>5} {'procs':>5} {'instr(ms)':>12} "
        f"{'plain(ms)':>12} {'events':>8} {'overhead %':>10}"
    )
    for p in points:
        lines.append(
            f"{p.benchmark:>6} {p.klass:>5} {p.nprocs:>5} "
            f"{p.time_instrumented * 1e3:>12.3f} "
            f"{p.time_uninstrumented * 1e3:>12.3f} "
            f"{p.events:>8} {p.overhead_pct:>10.3f}"
        )
    return "\n".join(lines)
