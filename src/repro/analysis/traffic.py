"""Per-pair traffic matrix diagnostics.

Built from the fabric's ground-truth transfer log (so it needs
``run_app(..., record_transfers=True)``).  Complements the per-process
overlap reports with the communication topology: who talks to whom, how
much, and in what sizes -- the first thing to check when a benchmark's
characterization looks wrong.
"""

from __future__ import annotations

import typing

import numpy as np

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.core.xfer_table import XferTable
    from repro.netsim.fabric import Fabric


def traffic_matrix(
    fabric: "Fabric", include_control: bool = False
) -> np.ndarray:
    """``matrix[src, dst]`` = user-payload bytes moved src -> dst.

    Control packets (<= control_packet_size) are excluded unless asked for.
    """
    if fabric.transfer_log is None:
        raise ValueError("fabric was not created with record_transfers=True")
    n = fabric.num_nodes
    matrix = np.zeros((n, n))
    threshold = fabric.params.control_packet_size
    for rec in fabric.transfer_log:
        if not include_control and rec.nbytes <= threshold:
            continue
        matrix[rec.src, rec.dst] += rec.nbytes
    return matrix


def message_counts(fabric: "Fabric") -> np.ndarray:
    """``counts[src, dst]`` = user-payload messages src -> dst."""
    if fabric.transfer_log is None:
        raise ValueError("fabric was not created with record_transfers=True")
    n = fabric.num_nodes
    counts = np.zeros((n, n), dtype=np.int64)
    threshold = fabric.params.control_packet_size
    for rec in fabric.transfer_log:
        if rec.nbytes > threshold:
            counts[rec.src, rec.dst] += 1
    return counts


def modeled_time_matrix(
    fabric: "Fabric", table: "XferTable", include_control: bool = False
) -> np.ndarray:
    """``matrix[src, dst]`` = Σ a-priori table time of src -> dst transfers.

    The per-pair analog of the per-process ``data_transfer_time`` measure:
    what the logged traffic *should* cost according to the ``perf_main``
    table, before contention.  Comparing this against the physical
    intervals in the transfer log localizes congestion to a rank pair.
    The whole log is priced in one vectorized
    :meth:`~repro.core.xfer_table.XferTable.times_for` call.
    """
    if fabric.transfer_log is None:
        raise ValueError("fabric was not created with record_transfers=True")
    n = fabric.num_nodes
    matrix = np.zeros((n, n))
    threshold = fabric.params.control_packet_size
    recs = [
        rec for rec in fabric.transfer_log
        if include_control or rec.nbytes > threshold
    ]
    if not recs:
        return matrix
    times = table.times_for(np.array([rec.nbytes for rec in recs]))
    src = np.array([rec.src for rec in recs], dtype=np.intp)
    dst = np.array([rec.dst for rec in recs], dtype=np.intp)
    np.add.at(matrix, (src, dst), times)
    return matrix


def render_traffic_matrix(matrix: np.ndarray, title: str = "") -> str:
    """Text heat-table of a (small) traffic matrix, in KiB."""
    n = matrix.shape[0]
    lines = []
    if title:
        lines.append(title)
    header = "src\\dst " + " ".join(f"{d:>9}" for d in range(n))
    lines.append(header)
    for src in range(n):
        cells = " ".join(
            f"{matrix[src, dst] / 1024:>9.1f}" if matrix[src, dst] else f"{'-':>9}"
            for dst in range(n)
        )
        lines.append(f"{src:>7} {cells}")
    lines.append(f"(KiB; total {matrix.sum() / 1024:.1f} KiB)")
    return "\n".join(lines)
