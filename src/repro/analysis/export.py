"""CSV export of experiment records (for external plotting stacks).

Every experiment driver returns structured records; these functions
flatten them into CSV with stable column names so the series can be fed
to pandas/gnuplot/spreadsheets without touching Python.
"""

from __future__ import annotations

import csv
import io
import os
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.micro import MicroPoint
    from repro.experiments.nas_char import CharPoint
    from repro.experiments.overhead import OverheadPoint
    from repro.experiments.sp_tuning import SpTuningResult


def _write(rows: list[dict], fieldnames: list[str],
           path: "str | os.PathLike | None") -> str:
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fieldnames, lineterminator="\n")
    writer.writeheader()
    writer.writerows(rows)
    text = buf.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


def micro_csv(
    points: "typing.Sequence[MicroPoint]",
    path: "str | os.PathLike | None" = None,
) -> str:
    """Figs. 3-9 series: one row per (compute point, side)."""
    rows = []
    for p in points:
        for side in ("sender", "receiver"):
            rows.append({
                "compute_s": p.compute_time,
                "side": side,
                "min_overlap_pct": p.min_pct(side),
                "max_overlap_pct": p.max_pct(side),
                "mean_wait_s": p.wait_time(side),
                "data_transfer_s": p.side(side).total.data_transfer_time,
            })
    return _write(rows, list(rows[0]) if rows else
                  ["compute_s", "side", "min_overlap_pct",
                   "max_overlap_pct", "mean_wait_s", "data_transfer_s"], path)


def nas_char_csv(
    points: "typing.Sequence[CharPoint]",
    path: "str | os.PathLike | None" = None,
) -> str:
    """Figs. 10-13/19 grids: one row per (benchmark, class, procs, variant)."""
    rows = []
    for p in points:
        m = p.report.total
        rows.append({
            "benchmark": p.benchmark,
            "class": p.klass,
            "nprocs": p.nprocs,
            "variant": p.variant or "",
            "min_overlap_pct": m.min_overlap_pct,
            "max_overlap_pct": m.max_overlap_pct,
            "data_transfer_s": m.data_transfer_time,
            "mpi_time_s": m.communication_call_time,
            "computation_s": m.computation_time,
            "transfers": m.transfer_count,
        })
    return _write(rows, list(rows[0]) if rows else
                  ["benchmark", "class", "nprocs", "variant",
                   "min_overlap_pct", "max_overlap_pct", "data_transfer_s",
                   "mpi_time_s", "computation_s", "transfers"], path)


def sp_tuning_csv(
    results: "typing.Sequence[SpTuningResult]",
    path: "str | os.PathLike | None" = None,
) -> str:
    """Figs. 14-18: one row per (class, procs, variant, scope)."""
    rows = []
    for r in results:
        for variant in ("original", "modified"):
            for scope, get in (("section", r.section), ("full", r.full)):
                m = get(variant)
                rows.append({
                    "class": r.klass,
                    "nprocs": r.nprocs,
                    "variant": variant,
                    "scope": scope,
                    "min_overlap_pct": m.min_overlap_pct,
                    "max_overlap_pct": m.max_overlap_pct,
                    "mpi_time_s": (r.mpi_time_original if variant == "original"
                                   else r.mpi_time_modified),
                })
    return _write(rows, list(rows[0]) if rows else
                  ["class", "nprocs", "variant", "scope", "min_overlap_pct",
                   "max_overlap_pct", "mpi_time_s"], path)


def overhead_csv(
    points: "typing.Sequence[OverheadPoint]",
    path: "str | os.PathLike | None" = None,
) -> str:
    """Fig. 20: one row per benchmark cell."""
    rows = [
        {
            "benchmark": p.benchmark,
            "class": p.klass,
            "nprocs": p.nprocs,
            "time_instrumented_s": p.time_instrumented,
            "time_uninstrumented_s": p.time_uninstrumented,
            "events": p.events,
            "overhead_pct": p.overhead_pct,
        }
        for p in points
    ]
    return _write(rows, list(rows[0]) if rows else
                  ["benchmark", "class", "nprocs", "time_instrumented_s",
                   "time_uninstrumented_s", "events", "overhead_pct"], path)
